"""The ablation harness: run-ID stability, resume, and the report.

Three concerns, in increasing cost:

* **identity** — content-hashed run IDs are a pure function of the
  experiment's maths (hypothesis: same declaration → same ID, any knob
  change → a new ID, execution details → no change);
* **resume** — a matrix directory is content-addressed, so re-invoking
  skips every completed run ID and only re-executes records whose
  schema went stale;
* **report** — the importance ranking surfaces a planted dominant knob
  from synthetic records (no training needed to test the arithmetic).

The full ``--check`` protocol (seeded fedavg pin reproduction included)
runs in the slow lane; CI's fast lane exercises the same gates via
``repro ablate --check`` directly.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.ablation import (
    BASELINE,
    FEDAVG_PIN,
    SCHEMA_VERSION,
    AblationConfig,
    build_report,
    canonical_scenario,
    cell_run_id,
    check_matrix,
    format_report,
    generate_cells,
    named_matrix,
    nightly_matrix,
    run_check,
    run_matrix,
)
from repro.utils.serialization import load_json, save_json


def tiny_config(**overrides) -> AblationConfig:
    """A seconds-cheap real matrix: 4 clients, 1 round, capped batches."""
    kwargs = dict(
        name="tiny",
        federation=dict(
            dataset_name="fmnist",
            n_clients=4,
            n_samples=200,
            seed=11,
            partition="label_cluster",
        ),
        model_name="mlp",
        model_kwargs={"hidden": [16]},
        train=dict(local_epochs=1, batch_size=32, lr=0.05, max_batches=2),
        n_rounds=1,
        algorithms=("fedavg",),
        seeds=(0,),
        baseline={},
        knobs={
            "participation": {"client_fraction": 0.5},
            "failures": {"failure_rate": 0.3},
        },
    )
    kwargs.update(overrides)
    return AblationConfig(**kwargs)


# ---------------------------------------------------------------------------
# Identity: run IDs are a pure function of the experiment's maths
# ---------------------------------------------------------------------------

fractions = st.floats(0.1, 0.9, allow_nan=False).map(lambda f: round(f, 3))


class TestRunIds:
    @given(fraction=fractions, seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_same_declaration_same_id(self, fraction, seed):
        # Two independent expansions of the same literals agree cell by
        # cell — no process, ordering or object-identity leakage.
        make = lambda: tiny_config(  # noqa: E731
            seeds=(seed,),
            knobs={"participation": {"client_fraction": fraction}},
        )
        a, b = make(), make()
        assert [cell_run_id(a, c) for c in generate_cells(a)] == [
            cell_run_id(b, c) for c in generate_cells(b)
        ]

    @given(
        pair=st.tuples(fractions, fractions).filter(lambda p: p[0] != p[1])
    )
    @settings(max_examples=25, deadline=None)
    def test_any_knob_change_new_id(self, pair):
        ids = []
        for fraction in pair:
            config = tiny_config(
                knobs={"participation": {"client_fraction": fraction}}
            )
            cell = generate_cells(config)[1]  # the participation variant
            ids.append(cell_run_id(config, cell))
        assert ids[0] != ids[1]

    @given(seeds=st.tuples(st.integers(0, 10**6), st.integers(0, 10**6)))
    @settings(max_examples=25, deadline=None)
    def test_seed_and_preset_changes_change_id(self, seeds):
        config = tiny_config()
        baseline = generate_cells(config)[0]
        base_id = cell_run_id(config, baseline)
        if seeds[0] != seeds[1]:
            other = tiny_config(seeds=(seeds[1],))
            assert cell_run_id(
                tiny_config(seeds=(seeds[0],)),
                generate_cells(tiny_config(seeds=(seeds[0],)))[0],
            ) != cell_run_id(other, generate_cells(other)[0])
        longer = tiny_config(n_rounds=2)
        assert cell_run_id(longer, generate_cells(longer)[0]) != base_id

    def test_execution_details_do_not_change_id(self):
        # Executor kind and checkpoint cadence change *how* a cell runs,
        # never what it computes — records stay shareable across both.
        config = tiny_config()
        ids = [cell_run_id(config, c) for c in generate_cells(config)]
        for variant in (
            tiny_config(executor="thread"),
            tiny_config(checkpoint_every=1),
            tiny_config(name="renamed"),
        ):
            assert [
                cell_run_id(variant, c) for c in generate_cells(variant)
            ] == ids

    def test_spelling_invariance(self):
        # Default-valued knobs vanish in canonical form, so the ID
        # cannot depend on how the scenario was spelled.
        assert canonical_scenario({"failure_rate": 0.0}) == {}
        assert canonical_scenario(
            {"compute_budget": 2}
        ) == canonical_scenario({"compute_budget": [2, 2]})
        a = canonical_scenario({"failure_rate": 0.3, "client_fraction": 0.5})
        b = canonical_scenario({"client_fraction": 0.5, "failure_rate": 0.3})
        assert a == b

    def test_invalid_composition_rejected_at_declaration(self):
        # Canonicalisation routes through ScenarioConfig, so an illegal
        # knob bundle fails at matrix-definition time, not mid-sweep.
        with pytest.raises(ValueError, match="straggler_rate"):
            canonical_scenario(
                {
                    "straggler_rate": 0.3,
                    "async_config": {"buffer_size": 2},
                }
            )


class TestGenerateCells:
    def test_baseline_first_then_declaration_order(self):
        cells = generate_cells(tiny_config())
        assert [c.knob for c in cells] == [
            BASELINE,
            "participation",
            "failures",
        ]

    def test_one_knob_off_when_baseline_contains_patch(self):
        # A baseline that ships with the knob on gets the informative
        # variant: the baseline *without* it.
        config = tiny_config(
            baseline={"failure_rate": 0.3},
            knobs={"failures": {"failure_rate": 0.3}},
        )
        cells = generate_cells(config)
        assert cells[0].scenario == {"failure_rate": 0.3}
        assert cells[1].scenario == {}

    def test_pairwise_cells(self):
        config = tiny_config(pairs=(("participation", "failures"),))
        cells = generate_cells(config)
        assert cells[-1].knob == "participation+failures"
        assert cells[-1].scenario == {
            "client_fraction": 0.5,
            "failure_rate": 0.3,
        }

    def test_matrix_is_algorithms_x_seeds_x_variants(self):
        config = tiny_config(
            algorithms=("fedavg", "local_only"), seeds=(0, 1)
        )
        cells = generate_cells(config)
        assert len(cells) == 2 * 2 * 3
        ids = [cell_run_id(config, c) for c in cells]
        assert len(set(ids)) == len(ids)

    def test_reserved_and_unknown_names_rejected(self):
        with pytest.raises(ValueError, match="reserved"):
            tiny_config(knobs={BASELINE: {"failure_rate": 0.1}})
        with pytest.raises(ValueError, match="'\\+'"):
            tiny_config(knobs={"a+b": {"failure_rate": 0.1}})
        with pytest.raises(ValueError, match="unknown knobs"):
            tiny_config(pairs=(("participation", "missing"),))
        with pytest.raises(ValueError, match="unknown AblationConfig keys"):
            AblationConfig.from_dict({"name": "x", "federation": {}, "oops": 1})
        with pytest.raises(ValueError, match="unknown matrix"):
            named_matrix("missing")

    def test_builtin_matrices_expand_cleanly(self):
        for config in (check_matrix(), nightly_matrix()):
            cells = generate_cells(config)
            ids = [cell_run_id(config, c) for c in cells]
            assert len(set(ids)) == len(ids)
        assert len(generate_cells(check_matrix())) == 6

    def test_config_round_trips_through_json(self):
        config = tiny_config(pairs=(("participation", "failures"),))
        clone = AblationConfig.from_dict(config.to_dict())
        assert [cell_run_id(clone, c) for c in generate_cells(clone)] == [
            cell_run_id(config, c) for c in generate_cells(config)
        ]


# ---------------------------------------------------------------------------
# Resume: the matrix directory is content-addressed
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def tiny_outcomes(tmp_path_factory):
    """One tiny matrix executed twice into the same directory."""
    out = tmp_path_factory.mktemp("ablate")
    config = tiny_config()
    return config, run_matrix(config, out), run_matrix(config, out)


class TestResume:
    def test_first_run_executes_everything(self, tiny_outcomes):
        _, first, _ = tiny_outcomes
        assert first.n_executed == len(first.results) == 3
        assert (first.out_dir / "ABLATION.json").exists()
        assert (first.out_dir / "ABLATION.md").exists()

    def test_second_run_skips_every_completed_id(self, tiny_outcomes):
        _, first, second = tiny_outcomes
        assert second.n_executed == 0
        assert second.n_skipped == 3
        assert second.run_ids == first.run_ids
        # Cached records are byte-for-byte the first invocation's.
        assert [r.record for r in second.results] == [
            r.record for r in first.results
        ]

    def test_record_shape(self, tiny_outcomes):
        config, first, _ = tiny_outcomes
        record = first.record_for("fedavg", BASELINE)
        assert record["schema"] == SCHEMA_VERSION
        assert record["run_id"] == first.run_ids[0]
        assert record["knob"] == BASELINE and record["scenario"] == {}
        for key in (
            "final_accuracy",
            "wall_seconds",
            "round_wall_seconds",
            "uploaded_params",
            "traffic_params",
            "n_stale_total",
            "n_quarantined_total",
            "n_quorum_failed",
        ):
            assert key in record["metrics"], key
        assert record["engine"]["n_dispatched"] == 4  # everyone, 1 round
        path = first.out_dir / "runs" / f"{record['run_id']}.json"
        assert load_json(path) == record

    def test_stale_schema_record_is_reexecuted(self, tiny_outcomes, tmp_path):
        config, first, _ = tiny_outcomes
        out = tmp_path / "stale"
        (out / "runs").mkdir(parents=True)
        for result in first.results:
            save_json(
                out / "runs" / f"{result.run_id}.json",
                {**result.record, "schema": SCHEMA_VERSION - 1},
            )
        outcome = run_matrix(config, out)
        assert outcome.n_executed == 3  # stale records are not trusted
        assert outcome.run_ids == first.run_ids

    def test_partial_directory_resumes_missing_cells_only(
        self, tiny_outcomes, tmp_path
    ):
        config, first, _ = tiny_outcomes
        out = tmp_path / "partial"
        (out / "runs").mkdir(parents=True)
        kept = first.results[:2]
        for result in kept:
            save_json(out / "runs" / f"{result.run_id}.json", result.record)
        outcome = run_matrix(config, out)
        assert outcome.n_executed == 1
        assert outcome.n_skipped == 2
        assert outcome.run_ids == first.run_ids

    def test_checkpoint_every_threads_the_existing_machinery(self, tmp_path):
        config = tiny_config(checkpoint_every=1, knobs={})
        outcome = run_matrix(config, tmp_path / "ckpt_run")
        rid = outcome.run_ids[0]
        assert any((tmp_path / "ckpt_run" / "ckpt" / rid).iterdir())
        # The checkpoint is an execution detail: the record matches the
        # in-memory run bit for bit (wall-clock aside).
        plain = run_matrix(
            dataclasses.replace(config, checkpoint_every=0),
            tmp_path / "plain_run",
        )
        timing = ("wall_seconds", "round_wall_seconds")
        strip = lambda m: {k: v for k, v in m.items() if k not in timing}  # noqa: E731
        assert strip(outcome.results[0].record["metrics"]) == strip(
            plain.results[0].record["metrics"]
        )


# ---------------------------------------------------------------------------
# Report: the importance ranking surfaces a planted dominant knob
# ---------------------------------------------------------------------------
def _synthetic_record(algorithm, knob, seed, acc, wall=1.0, traffic=1000):
    return {
        "algorithm": algorithm,
        "knob": knob,
        "seed": seed,
        "metrics": {
            "final_accuracy": acc,
            "round_wall_seconds": wall,
            "traffic_params": traffic,
        },
    }


class TestReport:
    def _config(self):
        return tiny_config(
            algorithms=("fedavg", "local_only"),
            knobs={
                "dominant": {"failure_rate": 0.5},
                "minor": {"client_fraction": 0.9},
                "wasteful": {"straggler_rate": 0.3},
            },
        )

    def _records(self):
        records = []
        for algorithm in ("fedavg", "local_only"):
            for seed in (0, 1):
                base = 0.80 if algorithm == "fedavg" else 0.60
                # "dominant" craters accuracy, "minor" barely moves it,
                # "wasteful" only inflates wall-clock and traffic.
                records += [
                    _synthetic_record(algorithm, BASELINE, seed, base),
                    _synthetic_record(algorithm, "dominant", seed, base - 0.30),
                    _synthetic_record(algorithm, "minor", seed, base - 0.01),
                    _synthetic_record(
                        algorithm,
                        "wasteful",
                        seed,
                        base,
                        wall=5.0,
                        traffic=9000,
                    ),
                ]
        return records

    def test_dominant_knob_ranks_first_on_accuracy(self):
        report = build_report(self._config(), self._records())
        assert report["ranking"]["accuracy"] == [
            "dominant",
            "wasteful",
            "minor",
        ] or report["ranking"]["accuracy"][0] == "dominant"
        assert report["ranking"]["wall_seconds"][0] == "wasteful"
        assert report["ranking"]["traffic_params"][0] == "wasteful"

    def test_deltas_are_seed_averaged_against_baseline(self):
        report = build_report(self._config(), self._records())
        entry = report["knobs"]["dominant"]["per_algorithm"]["fedavg"]
        assert entry["delta_accuracy"] == pytest.approx(-0.30)
        assert report["knobs"]["dominant"]["importance"][
            "accuracy"
        ] == pytest.approx(0.30)
        assert report["baseline"]["fedavg"]["accuracy"] == pytest.approx(0.80)

    def test_nan_metrics_rank_last(self):
        config = self._config()
        records = self._records() + [
            _synthetic_record(a, "dark", s, float("nan"))
            for a in ("fedavg", "local_only")
            for s in (0, 1)
        ]
        config = dataclasses.replace(
            config, knobs={**config.knobs, "dark": {"trace": {"0": [9]}}}
        )
        report = build_report(config, records)
        assert report["ranking"]["accuracy"][-1] == "dark"

    def test_markdown_mentions_every_knob_and_algorithm(self):
        report = build_report(self._config(), self._records())
        text = format_report(report)
        for name in ("dominant", "minor", "wasteful", "fedavg", "local_only"):
            assert name in text
        assert "| rank | knob |" in text


# ---------------------------------------------------------------------------
# The full --check protocol (seeded pin included) — slow lane
# ---------------------------------------------------------------------------
@pytest.mark.slow
def test_run_check_protocol(tmp_path):
    summary = run_check(tmp_path, echo=lambda message: None)
    assert summary["n_cells"] == 6
    assert summary["first_executed"] == 6
    assert summary["second_executed"] == 0
    assert summary["pin"] == FEDAVG_PIN
