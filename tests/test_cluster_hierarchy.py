"""Hierarchical clustering, cross-validated against scipy."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.cluster.hierarchy import cophenet, fcluster
from scipy.cluster.hierarchy import linkage as scipy_linkage
from scipy.spatial.distance import squareform

from repro.cluster.distance import pairwise_euclidean
from repro.cluster.hierarchy import (
    LINKAGE_METHODS,
    auto_cut_gap,
    canonical_labels,
    cophenetic_matrix,
    cut_by_distance,
    cut_by_k,
    linkage,
    merge_heights,
)
from repro.cluster.metrics import adjusted_rand_index


def _planted(rng, centers, per=6, spread=0.2):
    points = np.vstack(
        [c + spread * rng.standard_normal((per, len(c))) for c in centers]
    )
    truth = np.repeat(np.arange(len(centers)), per)
    return points, truth


class TestAgainstScipy:
    @pytest.mark.parametrize("method", LINKAGE_METHODS)
    def test_cophenetic_matrix_matches(self, method, rng):
        for _ in range(3):
            x = rng.standard_normal((11, 4))
            d = pairwise_euclidean(x)
            ours = cophenetic_matrix(linkage(d, method))
            theirs = squareform(
                cophenet(scipy_linkage(squareform(d, checks=False), method=method))
            )
            np.testing.assert_allclose(ours, theirs, rtol=1e-8, atol=1e-10)

    @pytest.mark.parametrize("method", LINKAGE_METHODS)
    def test_cut_by_k_matches_fcluster(self, method, rng):
        x = rng.standard_normal((10, 3))
        d = pairwise_euclidean(x)
        z_ours = linkage(d, method)
        z_scipy = scipy_linkage(squareform(d, checks=False), method=method)
        for k in (2, 3, 5):
            ours = cut_by_k(z_ours, k)
            theirs = canonical_labels(fcluster(z_scipy, k, criterion="maxclust"))
            assert adjusted_rand_index(ours, theirs) == pytest.approx(1.0)

    def test_heights_ascend_for_monotonic_linkages(self, rng):
        x = rng.standard_normal((12, 3))
        d = pairwise_euclidean(x)
        for method in ("single", "complete", "average", "ward"):
            heights = merge_heights(linkage(d, method))
            assert (np.diff(heights) >= -1e-10).all()


class TestCuts:
    def test_cut_by_k_extremes(self, rng):
        d = pairwise_euclidean(rng.standard_normal((6, 2)))
        z = linkage(d, "average")
        assert cut_by_k(z, 1).max() == 0
        assert len(np.unique(cut_by_k(z, 6))) == 6

    def test_cut_by_k_validation(self, rng):
        z = linkage(pairwise_euclidean(rng.standard_normal((4, 2))), "average")
        with pytest.raises(ValueError, match="k must be"):
            cut_by_k(z, 0)
        with pytest.raises(ValueError, match="k must be"):
            cut_by_k(z, 5)

    def test_cut_by_distance(self, rng):
        points, truth = _planted(rng, [(0, 0), (10, 10)])
        d = pairwise_euclidean(points)
        z = linkage(d, "average")
        labels = cut_by_distance(z, 5.0)
        assert adjusted_rand_index(truth, labels) == pytest.approx(1.0)

    def test_cut_by_distance_zero_gives_singletons(self, rng):
        d = pairwise_euclidean(rng.standard_normal((5, 2)))
        labels = cut_by_distance(linkage(d, "single"), -1.0)
        assert len(np.unique(labels)) == 5


class TestAutoGap:
    @pytest.mark.parametrize("n_groups", [2, 3, 4])
    def test_recovers_planted_k(self, n_groups, rng):
        centers = [np.array([20.0 * i, 0.0]) for i in range(n_groups)]
        points, truth = _planted(rng, centers)
        labels = auto_cut_gap(linkage(pairwise_euclidean(points), "average"))
        assert len(np.unique(labels)) == n_groups
        assert adjusted_rand_index(truth, labels) == pytest.approx(1.0)

    def test_max_clusters_bound(self, rng):
        centers = [np.array([30.0 * i, 0.0]) for i in range(4)]
        points, _ = _planted(rng, centers)
        labels = auto_cut_gap(
            linkage(pairwise_euclidean(points), "average"), max_clusters=2
        )
        assert len(np.unique(labels)) <= 2

    def test_min_gap_ratio_declares_homogeneous(self, rng):
        # Pure noise: the guard should collapse to one cluster.
        d = pairwise_euclidean(rng.standard_normal((10, 2)))
        labels = auto_cut_gap(linkage(d, "average"), min_gap_ratio=0.9)
        assert len(np.unique(labels)) == 1

    def test_two_points(self):
        d = np.array([[0.0, 1.0], [1.0, 0.0]])
        labels = auto_cut_gap(linkage(d, "average"))
        assert len(labels) == 2


class TestStructure:
    def test_linkage_matrix_format(self, rng):
        d = pairwise_euclidean(rng.standard_normal((7, 3)))
        z = linkage(d, "complete")
        assert z.shape == (6, 4)
        # Sizes column ends with the full set.
        assert z[-1, 3] == 7
        # Child ids are valid.
        assert (z[:, :2] >= 0).all() and (z[:, :2] < 2 * 7 - 1).all()

    def test_canonical_labels(self):
        np.testing.assert_array_equal(
            canonical_labels(np.array([9, 4, 9, 7])), [0, 1, 0, 2]
        )

    def test_single_point_raises(self):
        with pytest.raises(ValueError, match="at least 2"):
            linkage(np.zeros((1, 1)), "average")

    def test_unknown_method_raises(self, rng):
        d = pairwise_euclidean(rng.standard_normal((4, 2)))
        with pytest.raises(ValueError, match="unknown linkage"):
            linkage(d, "centroid")

    def test_tied_distances_deterministic(self):
        # Four equidistant-ish points with exact ties.
        d = np.array(
            [
                [0.0, 1.0, 2.0, 2.0],
                [1.0, 0.0, 2.0, 2.0],
                [2.0, 2.0, 0.0, 1.0],
                [2.0, 2.0, 1.0, 0.0],
            ]
        )
        z1 = linkage(d, "average")
        z2 = linkage(d, "average")
        np.testing.assert_array_equal(z1, z2)
        labels = cut_by_k(z1, 2)
        np.testing.assert_array_equal(labels, [0, 0, 1, 1])
