"""FederatedEnv details and shared algorithm-base helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.base import (
    evaluate_assignment,
    run_clustered_training,
)
from repro.fl.history import RunHistory


class TestEnvEvaluation:
    def test_evaluate_state_bounds(self, small_env):
        acc = small_env.evaluate_state(small_env.init_state(), client_id=0)
        assert 0.0 <= acc <= 1.0

    def test_mean_local_accuracy_wrong_count_raises(self, small_env):
        with pytest.raises(ValueError):
            small_env.mean_local_accuracy([small_env.init_state()])

    def test_server_rng_keyed_by_round(self, small_env):
        a = small_env.server_rng(1).integers(0, 1 << 30)
        a2 = small_env.server_rng(1).integers(0, 1 << 30)
        b = small_env.server_rng(2).integers(0, 1 << 30)
        assert a == a2
        assert a != b

    def test_n_params_matches_model(self, small_env):
        assert small_env.n_params == small_env.scratch_model.num_parameters()


@pytest.mark.slow
class TestClusteredTrainingHelper:
    def test_runs_each_cluster_and_records(self, small_env):
        m = small_env.federation.n_clients
        labels = np.array([i % 2 for i in range(m)])
        cluster_states = [small_env.init_state(), small_env.init_state()]
        history = RunHistory("helper", "fmnist_like", 0)
        states, mean_acc, per_client = run_clustered_training(
            small_env,
            labels,
            cluster_states,
            history,
            n_rounds=2,
            first_round=1,
            eval_every=1,
        )
        assert history.n_rounds == 2
        assert len(states) == 2
        assert per_client.shape == (m,)
        assert 0.0 <= mean_acc <= 1.0
        # The two cluster models must have diverged from each other
        # (different member distributions).
        assert any(
            not np.allclose(states[0][k], states[1][k]) for k in states[0]
        )

    def test_empty_cluster_is_skipped(self, small_env):
        m = small_env.federation.n_clients
        labels = np.zeros(m, dtype=np.int64)  # everyone in cluster 0
        cluster_states = [small_env.init_state(), small_env.init_state()]
        history = RunHistory("helper", "fmnist_like", 0)
        init_copy = {k: v.copy() for k, v in cluster_states[1].items()}
        states, _, _ = run_clustered_training(
            small_env, labels, cluster_states, history,
            n_rounds=1, first_round=1,
        )
        # Cluster 1 had no members: its *returned* state must equal the
        # initial one (the trainer keeps cluster models on an internal
        # packed matrix now, so the input list is never mutated — the
        # skip behaviour only shows in the returned states).
        assert all(
            np.array_equal(states[1][k], init_copy[k]) for k in init_copy
        )
        # Cluster 0 trained: its returned state must have moved.
        assert any(
            not np.array_equal(states[0][k], init_copy[k]) for k in init_copy
        )

    def test_client_fraction_subsamples(self, small_env):
        m = small_env.federation.n_clients
        labels = np.zeros(m, dtype=np.int64)
        history = RunHistory("helper", "fmnist_like", 0)
        before = small_env.tracker.total_uploaded
        run_clustered_training(
            small_env, labels, [small_env.init_state()], history,
            n_rounds=1, first_round=1, client_fraction=0.5,
        )
        uploaded = small_env.tracker.total_uploaded - before
        assert uploaded == (m // 2) * small_env.n_params

    def test_evaluate_assignment_matches_manual(self, small_env):
        m = small_env.federation.n_clients
        labels = np.array([i % 2 for i in range(m)])
        states = [small_env.init_state(), small_env.init_state()]
        mean_acc, per_client = evaluate_assignment(small_env, states, labels)
        manual = np.array(
            [
                small_env.evaluate_state(states[labels[i]], i)
                for i in range(m)
            ]
        )
        np.testing.assert_allclose(per_client, manual)
        assert mean_acc == pytest.approx(manual.mean())
