"""Numerical gradient checks for every layer.

These are the load-bearing tests of the nn substrate: a layer whose
backward pass disagrees with central differences would silently corrupt
every experiment built on top.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    LeakyReLU,
    Linear,
    MaxPool2d,
    ReLU,
    Sigmoid,
    Tanh,
)
from repro.nn.module import Sequential

from helpers import check_module_gradients, to_float64


def _x(rng: np.random.Generator, *shape: int) -> np.ndarray:
    return rng.standard_normal(shape)


class TestLinearGrad:
    def test_with_bias(self, rng):
        layer = to_float64(Linear(7, 5, rng))
        check_module_gradients(layer, _x(rng, 6, 7), rng)

    def test_without_bias(self, rng):
        layer = to_float64(Linear(4, 3, rng, bias=False))
        check_module_gradients(layer, _x(rng, 5, 4), rng)

    def test_single_sample(self, rng):
        layer = to_float64(Linear(3, 2, rng))
        check_module_gradients(layer, _x(rng, 1, 3), rng)


class TestConv2dGrad:
    def test_basic(self, rng):
        layer = to_float64(Conv2d(2, 3, 3, rng))
        check_module_gradients(layer, _x(rng, 2, 2, 6, 6), rng)

    def test_with_padding(self, rng):
        layer = to_float64(Conv2d(1, 2, 3, rng, padding=1))
        check_module_gradients(layer, _x(rng, 2, 1, 5, 5), rng)

    def test_with_stride(self, rng):
        layer = to_float64(Conv2d(2, 2, 3, rng, stride=2))
        check_module_gradients(layer, _x(rng, 2, 2, 7, 7), rng)

    def test_stride_and_padding(self, rng):
        layer = to_float64(Conv2d(1, 3, 5, rng, stride=2, padding=2))
        check_module_gradients(layer, _x(rng, 2, 1, 8, 8), rng)

    def test_no_bias(self, rng):
        layer = to_float64(Conv2d(2, 2, 3, rng, bias=False))
        check_module_gradients(layer, _x(rng, 1, 2, 5, 5), rng)

    def test_1x1_kernel(self, rng):
        layer = to_float64(Conv2d(3, 4, 1, rng))
        check_module_gradients(layer, _x(rng, 2, 3, 4, 4), rng)


class TestPoolGrad:
    def test_maxpool_nonoverlapping(self, rng):
        check_module_gradients(MaxPool2d(2), _x(rng, 2, 3, 6, 6), rng)

    def test_maxpool_overlapping(self, rng):
        # stride < kernel: overlapping windows must accumulate gradients.
        check_module_gradients(MaxPool2d(3, stride=1), _x(rng, 2, 2, 6, 6), rng)

    def test_avgpool_nonoverlapping(self, rng):
        check_module_gradients(AvgPool2d(2), _x(rng, 2, 3, 6, 6), rng)

    def test_avgpool_overlapping(self, rng):
        check_module_gradients(AvgPool2d(3, stride=2), _x(rng, 1, 2, 7, 7), rng)


class TestActivationGrad:
    def test_relu(self, rng):
        # Shift away from 0 to avoid the kink in the numerical check.
        x = _x(rng, 4, 6)
        x[np.abs(x) < 0.05] += 0.2
        check_module_gradients(ReLU(), x, rng)

    def test_leaky_relu(self, rng):
        x = _x(rng, 4, 6)
        x[np.abs(x) < 0.05] += 0.2
        check_module_gradients(LeakyReLU(0.1), x, rng)

    def test_tanh(self, rng):
        check_module_gradients(Tanh(), _x(rng, 4, 6), rng)

    def test_sigmoid(self, rng):
        check_module_gradients(Sigmoid(), _x(rng, 4, 6), rng)

    def test_flatten(self, rng):
        check_module_gradients(Flatten(), _x(rng, 3, 2, 4, 4), rng)


class TestBatchNormGrad:
    def test_bn1d(self, rng):
        layer = to_float64(BatchNorm1d(5))
        check_module_gradients(layer, _x(rng, 8, 5), rng, rtol=5e-4, atol=1e-5)

    def test_bn2d(self, rng):
        layer = to_float64(BatchNorm2d(3))
        check_module_gradients(layer, _x(rng, 4, 3, 4, 4), rng, rtol=5e-4, atol=1e-5)

    def test_bn_nontrivial_gamma_beta(self, rng):
        layer = to_float64(BatchNorm1d(4))
        layer.gamma.data[:] = rng.standard_normal(4) + 1.5
        layer.beta.data[:] = rng.standard_normal(4)
        check_module_gradients(layer, _x(rng, 10, 4), rng, rtol=5e-4, atol=1e-5)


class TestDropoutGrad:
    def test_gradient_matches_mask(self, rng):
        layer = Dropout(0.4, rng)
        x = _x(rng, 8, 6)
        out = layer.forward(x)
        mask = layer._mask
        assert mask is not None
        grad = layer.backward(np.ones_like(out))
        np.testing.assert_allclose(grad, mask)

    def test_eval_mode_identity_gradient(self, rng):
        layer = Dropout(0.5, rng).eval()
        x = _x(rng, 4, 4)
        layer.forward(x)
        grad = layer.backward(np.full((4, 4), 2.0))
        np.testing.assert_allclose(grad, 2.0)


class TestStackedGrad:
    """A small conv net end to end: the composition must also check out."""

    def test_conv_stack(self, rng):
        model = Sequential(
            ("conv", Conv2d(1, 2, 3, rng, padding=1)),
            ("act", Tanh()),
            ("pool", AvgPool2d(2)),
            ("flat", Flatten()),
            ("fc", Linear(2 * 3 * 3, 4, rng)),
        )
        to_float64(model)
        check_module_gradients(model, _x(rng, 2, 1, 6, 6), rng)

    def test_mlp_stack(self, rng):
        model = Sequential(
            ("flat", Flatten()),
            ("fc1", Linear(12, 8, rng)),
            ("act", Sigmoid()),
            ("fc2", Linear(8, 3, rng)),
        )
        to_float64(model)
        check_module_gradients(model, _x(rng, 3, 3, 2, 2), rng)


class TestBackwardContract:
    def test_backward_before_forward_raises(self, rng):
        layer = Linear(3, 2, rng)
        with pytest.raises(RuntimeError, match="backward called before forward"):
            layer.backward(np.zeros((1, 2)))

    def test_conv_backward_before_forward_raises(self, rng):
        layer = Conv2d(1, 1, 3, rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 1, 2, 2)))

    def test_maxpool_double_backward_raises(self, rng):
        layer = MaxPool2d(2)
        x = rng.standard_normal((1, 1, 4, 4))
        layer.forward(x)
        layer.backward(np.ones((1, 1, 2, 2)))
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 1, 2, 2)))
