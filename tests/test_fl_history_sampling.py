"""Run histories and client sampling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fl.history import RoundRecord, RunHistory
from repro.fl.sampling import full_participation, sample_from, uniform_sample


def _record(i, acc=0.5, up=100, down=100):
    return RoundRecord(
        round_index=i,
        mean_train_loss=1.0 / i,
        mean_local_accuracy=acc,
        n_participants=4,
        n_clusters=1,
        uploaded_params=up * i,
        downloaded_params=down * i,
    )


class TestRunHistory:
    def test_append_and_curves(self):
        history = RunHistory("fedavg", "fmnist_like", 0)
        for i in range(1, 4):
            history.append(_record(i, acc=0.2 * i))
        assert history.n_rounds == 3
        np.testing.assert_allclose(history.accuracy_curve(), [0.2, 0.4, 0.6])
        assert history.final_accuracy == pytest.approx(0.6)
        assert history.best_accuracy == pytest.approx(0.6)

    def test_append_out_of_order_raises(self):
        history = RunHistory("fedavg", "fmnist_like", 0)
        history.append(_record(2))
        with pytest.raises(ValueError, match="not after"):
            history.append(_record(2))

    def test_empty_history_nan(self):
        history = RunHistory("fedavg", "fmnist_like", 0)
        assert np.isnan(history.final_accuracy)

    def test_rounds_to_accuracy(self):
        history = RunHistory("x", "y", 0)
        for i, acc in enumerate([0.3, 0.5, 0.9], start=1):
            history.append(_record(i, acc=acc))
        assert history.rounds_to_accuracy(0.5) == 2
        assert history.rounds_to_accuracy(0.95) is None

    def test_comm_to_accuracy(self):
        history = RunHistory("x", "y", 0)
        for i, acc in enumerate([0.3, 0.9], start=1):
            history.append(_record(i, acc=acc))
        assert history.comm_to_accuracy(0.9) == 200 + 200
        assert history.comm_to_accuracy(0.99) is None

    def test_to_dict_jsonable(self):
        from repro.utils.serialization import to_jsonable

        history = RunHistory("x", "y", 0)
        history.append(_record(1))
        payload = to_jsonable(history.to_dict())
        assert payload["n_rounds"] == 1


class TestSampling:
    def test_full_participation(self):
        np.testing.assert_array_equal(full_participation(5), np.arange(5))

    def test_uniform_sample_size(self, rng):
        picked = uniform_sample(10, 0.3, rng)
        assert len(picked) == 3
        assert len(np.unique(picked)) == 3
        assert (np.diff(picked) > 0).all()  # sorted

    def test_min_clients_floor(self, rng):
        picked = uniform_sample(10, 0.01, rng, min_clients=2)
        assert len(picked) == 2

    def test_fraction_one_can_pick_all(self, rng):
        assert len(uniform_sample(7, 1.0, rng)) == 7

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            uniform_sample(0, 0.5, rng)
        with pytest.raises(ValueError):
            uniform_sample(5, 0.0, rng)
        with pytest.raises(ValueError):
            uniform_sample(5, 1.5, rng)

    def test_min_clients_above_population_raises(self, rng):
        """A floor above the population is a config error, not a silent
        clamp to full participation."""
        with pytest.raises(ValueError, match="min_clients"):
            uniform_sample(5, 0.5, rng, min_clients=6)

    def test_min_clients_equal_population_is_full(self, rng):
        np.testing.assert_array_equal(
            uniform_sample(5, 0.2, rng, min_clients=5), np.arange(5)
        )

    @settings(deadline=None, max_examples=60)
    @given(
        n_clients=st.integers(1, 64),
        fraction=st.floats(0.01, 1.0),
        min_clients=st.integers(1, 64),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_uniform_sample_properties(self, n_clients, fraction, min_clients, seed):
        """Sorted unique in-range ids, deterministic in the generator
        state, exact pick count — or a ValueError for an impossible floor."""
        if min_clients > n_clients:
            with pytest.raises(ValueError, match="min_clients"):
                uniform_sample(
                    n_clients, fraction, np.random.default_rng(seed), min_clients
                )
            return
        picked = uniform_sample(
            n_clients, fraction, np.random.default_rng(seed), min_clients
        )
        again = uniform_sample(
            n_clients, fraction, np.random.default_rng(seed), min_clients
        )
        np.testing.assert_array_equal(picked, again)
        expected = min(
            n_clients, max(min_clients, int(round(fraction * n_clients)))
        )
        assert len(picked) == expected
        assert len(np.unique(picked)) == len(picked)
        assert (np.diff(picked) > 0).all() if len(picked) > 1 else True
        assert picked.min() >= 0 and picked.max() < n_clients

    @settings(deadline=None, max_examples=30)
    @given(
        n_clients=st.integers(1, 64),
        fraction=st.floats(0.01, 1.0),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_sample_from_full_population_matches_uniform(
        self, n_clients, fraction, seed
    ):
        """With every client eligible, the subset sampler reduces to
        uniform_sample — same draw from the same generator state."""
        a = uniform_sample(n_clients, fraction, np.random.default_rng(seed))
        b = sample_from(
            np.arange(n_clients), fraction, np.random.default_rng(seed)
        )
        np.testing.assert_array_equal(a, b)

    def test_sample_from_subset_stays_in_subset(self, rng):
        eligible = np.array([2, 5, 7, 11, 13])
        picked = sample_from(eligible, 0.6, rng)
        assert set(picked) <= set(eligible.tolist())
        assert len(picked) == 3
        assert (np.diff(picked) > 0).all()
