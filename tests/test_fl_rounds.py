"""The round engine: scenario policy, seeded parity pins, executor matrix.

Three contracts:

1. **Parity pins** — under the default scenario the engine reproduces
   the pre-refactor per-algorithm round loops bit-for-bit: the seeded
   Table-I accuracies, final-round train losses and traffic totals below
   were captured from the hand-rolled loops immediately before the
   engine refactor.
2. **Scenario matrix** — every (sampling × failure × straggler) cell is
   deterministic and identical across the serial/thread/process/batched
   executor kinds (scenario middleware acts on task lists and update
   lists, never on the executor).
3. **Middleware semantics** — failures consume the download but never
   upload; stragglers train and upload but miss aggregation; at least
   one participant always survives; arrivals gate eligibility and drive
   FedClust's newcomer onboarding.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.base import GlobalModelRounds
from repro.algorithms.registry import make_algorithm
from repro.data.federation import build_federation
from repro.fl.config import TrainConfig
from repro.fl.parallel import UpdateTask
from repro.fl.rounds import RoundEngine, ScenarioConfig
from repro.fl.simulation import FederatedEnv
from repro.fl.history import RunHistory

#: (final accuracy, last-round mean train loss, uploaded, downloaded)
#: captured from the pre-engine loops on the seeded config below.
_PINS = {
    "fedavg": (0.43177546138072453, 2.9827569512520618, 7103472, 7103472),
    "fedprox": (0.43177546138072453, 2.7420452448847454, 7103472, 7103472),
    "cfl": (0.43177546138072453, 2.9827569512520618, 7103472, 7103472),
    "ifca": (0.49332137161084527, 0.6809209035459525, 7103472, 14206944),
    "pacfl": (0.5, 0.39267744787125936, 4809376, 4735648),
    "fedclust": (1.0, 2.4813714134032844e-05, 4743408, 7103472),
    "local_only": (1.0, 1.8147281241239395e-06, 0, 0),
}

_KWARGS = {
    "fedavg": {},
    "fedprox": {"mu": 0.1},
    "cfl": {"warmup_rounds": 1},
    "ifca": {"n_clusters": 2},
    "pacfl": {},
    "fedclust": {"warmup_steps": 10, "warmup_lr": 0.01},
    "local_only": {},
}


@pytest.fixture(scope="module")
def federation():
    return build_federation(
        "cifar10", n_clients=8, n_samples=800, seed=5, partition="label_cluster"
    )


@pytest.fixture(scope="module")
def env_factory(federation):
    def make(executor="serial", local_epochs=2, seed=2):
        return FederatedEnv(
            federation,
            model_name="mlp",
            model_kwargs={"hidden": (96,)},
            train_cfg=TrainConfig(
                local_epochs=local_epochs, batch_size=32, lr=0.05, momentum=0.9
            ),
            seed=seed,
            executor=executor,
        )

    return make


# ----------------------------------------------------------------------
# ScenarioConfig validation
# ----------------------------------------------------------------------
class TestScenarioConfig:
    def test_defaults_are_paper_scale(self):
        scenario = ScenarioConfig()
        assert scenario.is_default

    def test_any_knob_leaves_default(self):
        assert not ScenarioConfig(client_fraction=0.5).is_default
        assert not ScenarioConfig(failure_rate=0.1).is_default
        assert not ScenarioConfig(straggler_rate=0.1).is_default
        assert not ScenarioConfig(arrivals={3: 2}).is_default

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"client_fraction": 0.0},
            {"client_fraction": 1.5},
            {"failure_rate": 1.0},
            {"failure_rate": -0.1},
            {"straggler_rate": 1.0},
            {"min_clients": 0},
            {"arrivals": {2: 0}},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ScenarioConfig(**kwargs)

    def test_min_clients_above_federation_fails_at_engine_construction(
        self, env_factory
    ):
        env = env_factory(local_epochs=1)
        with pytest.raises(ValueError, match="min_clients"):
            RoundEngine(env, ScenarioConfig(min_clients=9, client_fraction=0.5))

    def test_fedavg_constructor_fraction_merges_with_scenario(self, env_factory):
        """Adding failure injection must not silently revert a
        configured client fraction to full participation."""
        from repro.algorithms.fedavg import FedAvg

        algo = FedAvg(client_fraction=0.5)
        merged = algo._scenario(ScenarioConfig(failure_rate=0.2))
        assert merged.client_fraction == 0.5
        assert merged.failure_rate == 0.2
        # Same fraction in both places is fine; different is a loud error.
        assert algo._scenario(ScenarioConfig(client_fraction=0.5)).client_fraction == 0.5
        with pytest.raises(ValueError, match="conflicting client fractions"):
            algo._scenario(ScenarioConfig(client_fraction=0.25))


# ----------------------------------------------------------------------
# Middleware semantics (one dispatched round each)
# ----------------------------------------------------------------------
class TestDispatchMiddleware:
    def _tasks(self, env):
        vector = env.layout.pack(env.init_state())
        return [
            UpdateTask(cid, flat=vector)
            for cid in range(env.federation.n_clients)
        ]

    def test_failures_charge_download_not_upload(self, env_factory):
        env = env_factory(local_epochs=1)
        engine = RoundEngine(env, ScenarioConfig(failure_rate=0.5))
        out = engine.dispatch(self._tasks(env), 1)
        m = env.federation.n_clients
        assert 0 < len(out.failed) < m
        assert len(out.survivors) == m - len(out.failed)
        # Failed clients consumed the broadcast but never uploaded.
        assert env.tracker.total_downloaded == m * env.n_params
        assert env.tracker.total_uploaded == len(out.survivors) * env.n_params
        assert engine.drop_log == [(1, out.failed.tolist())]

    def test_stragglers_charge_both_but_miss_aggregation(self, env_factory):
        env = env_factory(local_epochs=1)
        engine = RoundEngine(env, ScenarioConfig(straggler_rate=0.5))
        out = engine.dispatch(self._tasks(env), 1)
        m = env.federation.n_clients
        assert 0 < len(out.stragglers) < m
        assert len(out.survivors) == m - len(out.stragglers)
        # Stragglers trained and uploaded — they just missed the deadline.
        assert env.tracker.total_downloaded == m * env.n_params
        assert env.tracker.total_uploaded == m * env.n_params
        assert engine.straggler_log == [(1, out.stragglers.tolist())]

    def test_same_round_same_drops(self, env_factory):
        env = env_factory(local_epochs=1)
        scenario = ScenarioConfig(failure_rate=0.5, straggler_rate=0.3)
        first = RoundEngine(env, scenario).dispatch(self._tasks(env), 4)
        second = RoundEngine(env, scenario).dispatch(self._tasks(env), 4)
        np.testing.assert_array_equal(first.failed, second.failed)
        np.testing.assert_array_equal(first.stragglers, second.stragglers)
        assert [u.client_id for u in first.survivors] == [
            u.client_id for u in second.survivors
        ]

    def test_someone_always_survives(self, env_factory):
        env = env_factory(local_epochs=1)
        engine = RoundEngine(
            env, ScenarioConfig(failure_rate=0.95, straggler_rate=0.95)
        )
        for round_index in range(1, 6):
            out = engine.dispatch(self._tasks(env), round_index)
            assert len(out.survivors) >= 1

    def test_failure_stream_matches_legacy_faulty_executor(self, env_factory):
        """The scenario middleware draws the exact (seed, 13, round,
        client) stream the deprecated FaultyExecutor used, so historical
        faulty runs reproduce under ScenarioConfig."""
        from repro.fl.failures import FaultyExecutor

        env = env_factory(local_epochs=1)
        with pytest.warns(DeprecationWarning):
            legacy = FaultyExecutor(0.5)
        tasks = self._tasks(env)
        legacy_alive = [t.client_id for t in legacy.survivors(env, tasks, 3)]
        engine = RoundEngine(env, ScenarioConfig(failure_rate=0.5))
        alive, failed = engine._apply_failures(tasks, 3)
        assert [t.client_id for t in alive] == legacy_alive
        assert sorted(failed) == sorted(
            set(range(len(tasks))) - set(legacy_alive)
        )

    def test_survivor_renormalisation(self, env_factory):
        """With stragglers dropped, the global average is renormalised
        over the survivors' sample counts only."""
        from repro.algorithms.base import cohort_matrix
        from repro.fl.aggregation import packed_weighted_average

        env = env_factory(local_epochs=1)
        engine = RoundEngine(env, ScenarioConfig(straggler_rate=0.5))
        strategy = GlobalModelRounds(env.layout.pack(env.init_state()))
        history = RunHistory("test", "x", 0)
        outcomes = []
        strategy.on_round_end = lambda eng, out: outcomes.append(out)
        engine.run(strategy, 1, history)
        survivors = outcomes[0].survivors
        assert 1 <= len(survivors) < env.federation.n_clients
        expected = env.layout.round_trip(
            packed_weighted_average(
                cohort_matrix(env, survivors), [u.n_samples for u in survivors]
            )
        )
        np.testing.assert_array_equal(strategy.vector, expected)


# ----------------------------------------------------------------------
# Parity pins: the engine reproduces the pre-refactor loops exactly
# ----------------------------------------------------------------------
class TestTableOnePins:
    @pytest.mark.parametrize("name", sorted(_PINS))
    def test_default_scenario_matches_pre_engine_loops(self, env_factory, name):
        env = env_factory("serial")
        result = make_algorithm(name, **_KWARGS[name]).run(env, n_rounds=3)
        acc, loss, uploaded, downloaded = _PINS[name]
        assert result.final_accuracy == acc
        assert result.history.records[-1].mean_train_loss == loss
        assert env.tracker.total_uploaded == uploaded
        assert env.tracker.total_downloaded == downloaded


# ----------------------------------------------------------------------
# The scenario matrix is executor-invariant and deterministic
# ----------------------------------------------------------------------
_SCENARIOS = {
    "partial": ScenarioConfig(client_fraction=0.5),
    "failures": ScenarioConfig(failure_rate=0.3),
    "partial+failures+stragglers": ScenarioConfig(
        client_fraction=0.75, failure_rate=0.25, straggler_rate=0.25
    ),
}


class TestScenarioMatrix:
    def _run(self, env_factory, executor, scenario, algorithm="fedavg"):
        env = env_factory(executor, local_epochs=1)
        try:
            result = make_algorithm(algorithm, **_KWARGS[algorithm]).run(
                env, n_rounds=2, scenario=scenario
            )
        finally:
            env.close()
        return result

    @pytest.mark.parametrize("scenario_name", sorted(_SCENARIOS))
    @pytest.mark.parametrize("executor", ["thread", "process", "batched"])
    def test_cells_identical_across_executors(
        self, env_factory, scenario_name, executor
    ):
        scenario = _SCENARIOS[scenario_name]
        serial = self._run(env_factory, "serial", scenario)
        other = self._run(env_factory, executor, scenario)
        np.testing.assert_array_equal(
            serial.per_client_accuracy, other.per_client_accuracy
        )
        assert serial.final_accuracy == other.final_accuracy
        assert serial.extras["drop_log"] == other.extras["drop_log"]
        assert serial.extras["straggler_log"] == other.extras["straggler_log"]

    @pytest.mark.parametrize(
        "algorithm", ["fedprox", "cfl", "ifca", "pacfl", "fedclust", "local_only"]
    )
    def test_every_algorithm_completes_deterministically(
        self, env_factory, algorithm
    ):
        scenario = ScenarioConfig(
            client_fraction=0.75, failure_rate=0.25, straggler_rate=0.25
        )
        n_rounds = 3 if algorithm in ("pacfl", "fedclust") else 2
        env = env_factory("serial", local_epochs=1)
        first = make_algorithm(algorithm, **_KWARGS[algorithm]).run(
            env, n_rounds=n_rounds, scenario=scenario
        )
        env = env_factory("serial", local_epochs=1)
        second = make_algorithm(algorithm, **_KWARGS[algorithm]).run(
            env, n_rounds=n_rounds, scenario=scenario
        )
        assert 0.0 <= first.final_accuracy <= 1.0
        assert first.final_accuracy == second.final_accuracy
        np.testing.assert_array_equal(
            first.per_client_accuracy, second.per_client_accuracy
        )
        np.testing.assert_array_equal(first.cluster_labels, second.cluster_labels)

    def test_partial_participation_trains_fewer_clients(self, env_factory):
        result = self._run(
            env_factory, "serial", ScenarioConfig(client_fraction=0.5)
        )
        assert [r.n_participants for r in result.history.records] == [4, 4]


# ----------------------------------------------------------------------
# Arrival events
# ----------------------------------------------------------------------
class TestArrivals:
    def test_eligibility_and_arrival_sets(self, env_factory):
        env = env_factory(local_epochs=1)
        engine = RoundEngine(env, ScenarioConfig(arrivals={6: 2, 7: 3}))
        np.testing.assert_array_equal(engine.eligible_clients(1), np.arange(6))
        np.testing.assert_array_equal(engine.eligible_clients(2), np.arange(7))
        np.testing.assert_array_equal(engine.eligible_clients(3), np.arange(8))
        np.testing.assert_array_equal(engine.arrivals_at(2), [6])
        np.testing.assert_array_equal(engine.arrivals_at(3), [7])
        assert engine.arrivals_at(1).size == 0

    def test_fedavg_late_arrival_joins_mid_run(self, env_factory):
        env = env_factory(local_epochs=1)
        result = make_algorithm("fedavg").run(
            env, n_rounds=3, scenario=ScenarioConfig(arrivals={7: 2})
        )
        assert [r.n_participants for r in result.history.records] == [7, 8, 8]

    def test_fedclust_onboards_arrival_as_newcomer(self, env_factory, federation):
        env = env_factory(local_epochs=1)
        result = make_algorithm("fedclust", **_KWARGS["fedclust"]).run(
            env, n_rounds=3, scenario=ScenarioConfig(arrivals={7: 2})
        )
        fitted = result.extras["fitted"]
        assert fitted.absent == [7]
        assert 7 in result.extras["onboarded"]
        # The arrival was re-routed to the cluster holding its
        # true-group peers, not left on the fallback label.
        group = federation.true_groups[7]
        peers = [
            int(c) for c in fitted.responders if federation.true_groups[c] == group
        ]
        expected = int(np.bincount(result.cluster_labels[peers]).argmax())
        assert result.cluster_labels[7] == expected
