"""The round engine: scenario policy, seeded parity pins, executor matrix.

Three contracts:

1. **Parity pins** — under the default scenario the engine reproduces
   the pre-refactor per-algorithm round loops bit-for-bit: the seeded
   Table-I accuracies, final-round train losses and traffic totals below
   were captured from the hand-rolled loops immediately before the
   engine refactor.
2. **Scenario matrix** — every (sampling × failure × straggler) cell is
   deterministic and identical across the serial/thread/process/batched
   executor kinds (scenario middleware acts on task lists and update
   lists, never on the executor).
3. **Middleware semantics** — failures consume the download but never
   upload; stragglers train and upload but miss aggregation; at least
   one participant always survives; arrivals gate eligibility and drive
   FedClust's newcomer onboarding.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.base import GlobalModelRounds
from repro.algorithms.registry import make_algorithm
from repro.data.federation import build_federation
from repro.fl.aggregation import packed_weighted_average
from repro.fl.config import TrainConfig
from repro.fl.defense import CheckpointConfig
from repro.fl.parallel import UpdateTask
from repro.fl.rounds import RoundEngine, ScenarioConfig, aggregation_weights
from repro.fl.simulation import FederatedEnv
from repro.fl.store import StoreConfig
from repro.fl.history import RoundRecord, RunHistory
from repro.fl.trace import AvailabilityTrace

#: (final accuracy, last-round mean train loss, uploaded, downloaded)
#: captured from the pre-engine loops on the seeded config below.
_PINS = {
    "fedavg": (0.43177546138072453, 2.9827569512520618, 7103472, 7103472),
    "fedprox": (0.43177546138072453, 2.7420452448847454, 7103472, 7103472),
    "cfl": (0.43177546138072453, 2.9827569512520618, 7103472, 7103472),
    "ifca": (0.49332137161084527, 0.6809209035459525, 7103472, 14206944),
    "pacfl": (0.5, 0.39267744787125936, 4809376, 4735648),
    "fedclust": (1.0, 2.4813714134032844e-05, 4743408, 7103472),
    "local_only": (1.0, 1.8147281241239395e-06, 0, 0),
}

_KWARGS = {
    "fedavg": {},
    "fedprox": {"mu": 0.1},
    "cfl": {"warmup_rounds": 1},
    "ifca": {"n_clusters": 2},
    "pacfl": {},
    "fedclust": {"warmup_steps": 10, "warmup_lr": 0.01},
    "local_only": {},
}


@pytest.fixture(scope="module")
def federation():
    return build_federation(
        "cifar10", n_clients=8, n_samples=800, seed=5, partition="label_cluster"
    )


@pytest.fixture(scope="module")
def env_factory(federation):
    def make(executor="serial", local_epochs=2, seed=2, store=None):
        return FederatedEnv(
            federation,
            model_name="mlp",
            model_kwargs={"hidden": (96,)},
            train_cfg=TrainConfig(
                local_epochs=local_epochs, batch_size=32, lr=0.05, momentum=0.9
            ),
            seed=seed,
            executor=executor,
            store=store,
        )

    return make


# ----------------------------------------------------------------------
# ScenarioConfig validation
# ----------------------------------------------------------------------
class TestScenarioConfig:
    def test_defaults_are_paper_scale(self):
        scenario = ScenarioConfig()
        assert scenario.is_default

    def test_any_knob_leaves_default(self):
        assert not ScenarioConfig(client_fraction=0.5).is_default
        assert not ScenarioConfig(failure_rate=0.1).is_default
        assert not ScenarioConfig(straggler_rate=0.1).is_default
        assert not ScenarioConfig(arrivals={3: 2}).is_default

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"client_fraction": 0.0},
            {"client_fraction": 1.5},
            {"failure_rate": 1.0},
            {"failure_rate": -0.1},
            {"straggler_rate": 1.0},
            {"min_clients": 0},
            {"arrivals": {2: 0}},
            {"staleness_decay": -0.1},
            {"staleness_decay": 1.1},
            {"compute_budget": (-1, 3)},
            {"compute_budget": (5, 2)},
            {"compute_budget": (1, 2, 3)},
            {"departures": {2: 1}},  # departs in its arrival round
            {"arrivals": {2: 3}, "departures": {2: 3}},  # at arrival
            {"trace": {0: [0]}},  # trace rounds are 1-based
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ScenarioConfig(**kwargs)

    def test_v2_knobs_leave_default(self):
        assert not ScenarioConfig(staleness_decay=0.5).is_default
        assert not ScenarioConfig(compute_budget=(1, 4)).is_default
        assert not ScenarioConfig(departures={2: 3}).is_default
        assert not ScenarioConfig(trace={0: [1]}).is_default

    def test_compute_budget_normalises_to_pair(self):
        assert ScenarioConfig(compute_budget=5).compute_budget == (5, 5)
        assert ScenarioConfig(compute_budget=(2, 8)).compute_budget == (2, 8)

    def test_unknown_client_ids_fail_at_engine_construction(self, env_factory):
        env = env_factory(local_epochs=1)
        for kwargs in (
            {"arrivals": {11: 2}},
            {"departures": {11: 2}},
            {"trace": {11: [1]}},
        ):
            with pytest.raises(ValueError, match="unknown client ids"):
                RoundEngine(env, ScenarioConfig(**kwargs))

    def test_min_clients_above_federation_fails_at_engine_construction(
        self, env_factory
    ):
        env = env_factory(local_epochs=1)
        with pytest.raises(ValueError, match="min_clients"):
            RoundEngine(env, ScenarioConfig(min_clients=9, client_fraction=0.5))

    def test_fedavg_constructor_fraction_merges_with_scenario(self, env_factory):
        """Adding failure injection must not silently revert a
        configured client fraction to full participation."""
        from repro.algorithms.fedavg import FedAvg

        algo = FedAvg(client_fraction=0.5)
        merged = algo._scenario(ScenarioConfig(failure_rate=0.2))
        assert merged.client_fraction == 0.5
        assert merged.failure_rate == 0.2
        # Same fraction in both places is fine; different is a loud error.
        assert algo._scenario(ScenarioConfig(client_fraction=0.5)).client_fraction == 0.5
        with pytest.raises(ValueError, match="conflicting client fractions"):
            algo._scenario(ScenarioConfig(client_fraction=0.25))


# ----------------------------------------------------------------------
# Middleware semantics (one dispatched round each)
# ----------------------------------------------------------------------
class TestDispatchMiddleware:
    def _tasks(self, env):
        vector = env.layout.pack(env.init_state())
        return [
            UpdateTask(cid, flat=vector)
            for cid in range(env.federation.n_clients)
        ]

    def test_failures_charge_download_not_upload(self, env_factory):
        env = env_factory(local_epochs=1)
        engine = RoundEngine(env, ScenarioConfig(failure_rate=0.5))
        out = engine.dispatch(self._tasks(env), 1)
        m = env.federation.n_clients
        assert 0 < len(out.failed) < m
        assert len(out.survivors) == m - len(out.failed)
        # Failed clients consumed the broadcast but never uploaded.
        assert env.tracker.total_downloaded == m * env.n_params
        assert env.tracker.total_uploaded == len(out.survivors) * env.n_params
        assert engine.drop_log == [(1, out.failed.tolist())]

    def test_stragglers_charge_both_but_miss_aggregation(self, env_factory):
        env = env_factory(local_epochs=1)
        engine = RoundEngine(env, ScenarioConfig(straggler_rate=0.5))
        out = engine.dispatch(self._tasks(env), 1)
        m = env.federation.n_clients
        assert 0 < len(out.stragglers) < m
        assert len(out.survivors) == m - len(out.stragglers)
        # Stragglers trained and uploaded — they just missed the deadline.
        assert env.tracker.total_downloaded == m * env.n_params
        assert env.tracker.total_uploaded == m * env.n_params
        assert engine.straggler_log == [(1, out.stragglers.tolist())]

    def test_same_round_same_drops(self, env_factory):
        env = env_factory(local_epochs=1)
        scenario = ScenarioConfig(failure_rate=0.5, straggler_rate=0.3)
        first = RoundEngine(env, scenario).dispatch(self._tasks(env), 4)
        second = RoundEngine(env, scenario).dispatch(self._tasks(env), 4)
        np.testing.assert_array_equal(first.failed, second.failed)
        np.testing.assert_array_equal(first.stragglers, second.stragglers)
        assert [u.client_id for u in first.survivors] == [
            u.client_id for u in second.survivors
        ]

    def test_someone_always_survives(self, env_factory):
        env = env_factory(local_epochs=1)
        engine = RoundEngine(
            env, ScenarioConfig(failure_rate=0.95, straggler_rate=0.95)
        )
        for round_index in range(1, 6):
            out = engine.dispatch(self._tasks(env), round_index)
            assert len(out.survivors) >= 1

    def test_failure_stream_matches_legacy_faulty_executor(self, env_factory):
        """The scenario middleware draws the exact (seed, 13, round,
        client) stream the deprecated FaultyExecutor used, so historical
        faulty runs reproduce under ScenarioConfig."""
        from repro.fl.failures import FaultyExecutor

        env = env_factory(local_epochs=1)
        with pytest.warns(DeprecationWarning):
            legacy = FaultyExecutor(0.5)
        tasks = self._tasks(env)
        legacy_alive = [t.client_id for t in legacy.survivors(env, tasks, 3)]
        engine = RoundEngine(env, ScenarioConfig(failure_rate=0.5))
        alive, failed = engine._apply_failures(tasks, 3)
        assert [t.client_id for t in alive] == legacy_alive
        assert sorted(failed) == sorted(
            set(range(len(tasks))) - set(legacy_alive)
        )

    def test_survivor_renormalisation(self, env_factory):
        """With stragglers dropped, the global average is renormalised
        over the survivors' sample counts only."""
        from repro.algorithms.base import cohort_matrix
        from repro.fl.aggregation import packed_weighted_average

        env = env_factory(local_epochs=1)
        engine = RoundEngine(env, ScenarioConfig(straggler_rate=0.5))
        strategy = GlobalModelRounds(env.layout.pack(env.init_state()))
        history = RunHistory("test", "x", 0)
        outcomes = []
        strategy.on_round_end = lambda eng, out: outcomes.append(out)
        engine.run(strategy, 1, history)
        survivors = outcomes[0].survivors
        assert 1 <= len(survivors) < env.federation.n_clients
        expected = env.layout.round_trip(
            packed_weighted_average(
                cohort_matrix(env, survivors), [u.n_samples for u in survivors]
            )
        )
        np.testing.assert_array_equal(strategy.vector, expected)


# ----------------------------------------------------------------------
# Parity pins: the engine reproduces the pre-refactor loops exactly
# ----------------------------------------------------------------------
class TestTableOnePins:
    @pytest.mark.parametrize("name", sorted(_PINS))
    def test_default_scenario_matches_pre_engine_loops(self, env_factory, name):
        env = env_factory("serial")
        result = make_algorithm(name, **_KWARGS[name]).run(env, n_rounds=3)
        acc, loss, uploaded, downloaded = _PINS[name]
        assert result.final_accuracy == acc
        assert result.history.records[-1].mean_train_loss == loss
        assert env.tracker.total_uploaded == uploaded
        assert env.tracker.total_downloaded == downloaded


# ----------------------------------------------------------------------
# The scenario matrix is executor-invariant and deterministic
# ----------------------------------------------------------------------
_SCENARIOS = {
    "partial": ScenarioConfig(client_fraction=0.5),
    "failures": ScenarioConfig(failure_rate=0.3),
    "partial+failures+stragglers": ScenarioConfig(
        client_fraction=0.75, failure_rate=0.25, straggler_rate=0.25
    ),
    # --- v2 middleware cells: staleness × budget × trace ---
    "stale": ScenarioConfig(
        client_fraction=0.5, straggler_rate=0.4, staleness_decay=0.5
    ),
    "budget": ScenarioConfig(compute_budget=(0, 3)),
    "stale+budget+trace": ScenarioConfig(
        client_fraction=0.75,
        straggler_rate=0.3,
        staleness_decay=0.5,
        compute_budget=(1, 4),
        trace={6: [2], 7: [1]},
        departures={5: 2},
    ),
}


class TestScenarioMatrix:
    def _run(self, env_factory, executor, scenario, algorithm="fedavg"):
        env = env_factory(executor, local_epochs=1)
        try:
            result = make_algorithm(algorithm, **_KWARGS[algorithm]).run(
                env, n_rounds=2, scenario=scenario
            )
        finally:
            env.close()
        return result

    @pytest.mark.parametrize("scenario_name", sorted(_SCENARIOS))
    @pytest.mark.parametrize("executor", ["thread", "process", "batched"])
    def test_cells_identical_across_executors(
        self, env_factory, scenario_name, executor
    ):
        scenario = _SCENARIOS[scenario_name]
        serial = self._run(env_factory, "serial", scenario)
        other = self._run(env_factory, executor, scenario)
        np.testing.assert_array_equal(
            serial.per_client_accuracy, other.per_client_accuracy
        )
        assert serial.final_accuracy == other.final_accuracy
        assert serial.extras["drop_log"] == other.extras["drop_log"]
        assert serial.extras["straggler_log"] == other.extras["straggler_log"]
        assert serial.extras["stale_log"] == other.extras["stale_log"]

    @pytest.mark.parametrize(
        "algorithm", ["fedprox", "cfl", "ifca", "pacfl", "fedclust", "local_only"]
    )
    def test_every_algorithm_completes_deterministically(
        self, env_factory, algorithm
    ):
        scenario = ScenarioConfig(
            client_fraction=0.75, failure_rate=0.25, straggler_rate=0.25
        )
        n_rounds = 3 if algorithm in ("pacfl", "fedclust") else 2
        env = env_factory("serial", local_epochs=1)
        first = make_algorithm(algorithm, **_KWARGS[algorithm]).run(
            env, n_rounds=n_rounds, scenario=scenario
        )
        env = env_factory("serial", local_epochs=1)
        second = make_algorithm(algorithm, **_KWARGS[algorithm]).run(
            env, n_rounds=n_rounds, scenario=scenario
        )
        assert 0.0 <= first.final_accuracy <= 1.0
        assert first.final_accuracy == second.final_accuracy
        np.testing.assert_array_equal(
            first.per_client_accuracy, second.per_client_accuracy
        )
        np.testing.assert_array_equal(first.cluster_labels, second.cluster_labels)

    def test_partial_participation_trains_fewer_clients(self, env_factory):
        result = self._run(
            env_factory, "serial", ScenarioConfig(client_fraction=0.5)
        )
        assert [r.n_participants for r in result.history.records] == [4, 4]


# ----------------------------------------------------------------------
# Arrival events
# ----------------------------------------------------------------------
class TestArrivals:
    def test_eligibility_and_arrival_sets(self, env_factory):
        env = env_factory(local_epochs=1)
        engine = RoundEngine(env, ScenarioConfig(arrivals={6: 2, 7: 3}))
        np.testing.assert_array_equal(engine.eligible_clients(1), np.arange(6))
        np.testing.assert_array_equal(engine.eligible_clients(2), np.arange(7))
        np.testing.assert_array_equal(engine.eligible_clients(3), np.arange(8))
        np.testing.assert_array_equal(engine.arrivals_at(2), [6])
        np.testing.assert_array_equal(engine.arrivals_at(3), [7])
        assert engine.arrivals_at(1).size == 0

    def test_fedavg_late_arrival_joins_mid_run(self, env_factory):
        env = env_factory(local_epochs=1)
        result = make_algorithm("fedavg").run(
            env, n_rounds=3, scenario=ScenarioConfig(arrivals={7: 2})
        )
        assert [r.n_participants for r in result.history.records] == [7, 8, 8]

    def test_fedclust_onboards_arrival_as_newcomer(self, env_factory, federation):
        env = env_factory(local_epochs=1)
        result = make_algorithm("fedclust", **_KWARGS["fedclust"]).run(
            env, n_rounds=3, scenario=ScenarioConfig(arrivals={7: 2})
        )
        fitted = result.extras["fitted"]
        assert fitted.absent == [7]
        assert 7 in result.extras["onboarded"]
        # The arrival was re-routed to the cluster holding its
        # true-group peers, not left on the fallback label.
        group = federation.true_groups[7]
        peers = [
            int(c) for c in fitted.responders if federation.true_groups[c] == group
        ]
        expected = int(np.bincount(result.cluster_labels[peers]).argmax())
        assert result.cluster_labels[7] == expected


# ----------------------------------------------------------------------
# Departure events and availability traces
# ----------------------------------------------------------------------
class TestDeparturesAndTraces:
    def test_departure_gates_eligibility(self, env_factory):
        env = env_factory(local_epochs=1)
        engine = RoundEngine(env, ScenarioConfig(departures={6: 2, 7: 3}))
        np.testing.assert_array_equal(engine.eligible_clients(1), np.arange(8))
        np.testing.assert_array_equal(
            engine.eligible_clients(2), [0, 1, 2, 3, 4, 5, 7]
        )
        np.testing.assert_array_equal(engine.eligible_clients(3), np.arange(6))
        np.testing.assert_array_equal(engine.departures_at(2), [6])
        np.testing.assert_array_equal(engine.departures_at(3), [7])
        assert engine.departures_at(1).size == 0

    def test_departed_clients_stop_training_but_stay_evaluated(self, env_factory):
        env = env_factory(local_epochs=1)
        result = make_algorithm("fedavg").run(
            env, n_rounds=3, scenario=ScenarioConfig(departures={0: 2, 4: 3})
        )
        assert [r.n_participants for r in result.history.records] == [8, 7, 6]
        assert [r.n_departed for r in result.history.records] == [0, 1, 1]
        assert result.extras["departure_log"] == [(2, [0]), (3, [4])]
        # Departed clients keep their Table-I evaluation entry.
        assert result.per_client_accuracy.shape == (8,)
        assert not np.isnan(result.per_client_accuracy).any()

    def test_on_departures_hook_fires(self, env_factory):
        env = env_factory(local_epochs=1)
        engine = RoundEngine(env, ScenarioConfig(departures={3: 2}))
        strategy = GlobalModelRounds(env.layout.pack(env.init_state()))
        seen = []
        strategy.on_departures = (
            lambda eng, r, departed: seen.append((r, departed.tolist()))
        )
        engine.run(strategy, 2, RunHistory("test", "x", 0))
        assert seen == [(2, [3])]

    def test_trace_is_the_participation_schedule(self, env_factory):
        env = env_factory(local_epochs=1)
        trace = AvailabilityTrace({5: [2], 6: [1], 7: []})
        engine = RoundEngine(env, ScenarioConfig(trace=trace))
        np.testing.assert_array_equal(
            engine.eligible_clients(1), [0, 1, 2, 3, 4, 6]
        )
        np.testing.assert_array_equal(
            engine.eligible_clients(2), [0, 1, 2, 3, 4, 5]
        )

    def test_trace_absence_charges_no_traffic(self, env_factory):
        """Unlike a failure (download charged), a trace absence means the
        client was never contacted."""
        env = env_factory(local_epochs=1)
        engine = RoundEngine(env, ScenarioConfig(trace={7: []}))
        strategy = GlobalModelRounds(env.layout.pack(env.init_state()))
        engine.run(strategy, 1, RunHistory("test", "x", 0))
        assert env.tracker.total_downloaded == 7 * env.n_params
        assert env.tracker.total_uploaded == 7 * env.n_params

    def test_trace_composes_with_arrivals_by_intersection(self, env_factory):
        env = env_factory(local_epochs=1)
        engine = RoundEngine(
            env,
            ScenarioConfig(arrivals={6: 2}, trace={6: [1, 2, 3], 5: [3]}),
        )
        # 6 is trace-available from round 1 but only arrives in round 2.
        np.testing.assert_array_equal(
            engine.eligible_clients(1), [0, 1, 2, 3, 4, 7]
        )
        np.testing.assert_array_equal(
            engine.eligible_clients(2), [0, 1, 2, 3, 4, 6, 7]
        )

    def test_from_events_subsumes_arrivals_and_departures(self, env_factory):
        """An event-style scenario and its materialised trace produce the
        same eligibility set every round."""
        env = env_factory(local_epochs=1)
        arrivals, departures = {6: 2}, {3: 3}
        event_engine = RoundEngine(
            env, ScenarioConfig(arrivals=arrivals, departures=departures)
        )
        trace = AvailabilityTrace.from_events(
            8, 4, arrivals=arrivals, departures=departures
        )
        trace_engine = RoundEngine(env, ScenarioConfig(trace=trace))
        for round_index in range(1, 5):
            np.testing.assert_array_equal(
                event_engine.eligible_clients(round_index),
                trace_engine.eligible_clients(round_index),
            )


# ----------------------------------------------------------------------
# Stale-update folding
# ----------------------------------------------------------------------
class TestStaleUpdates:
    def _run_with_outcomes(self, env, scenario, n_rounds=3):
        engine = RoundEngine(env, scenario)
        strategy = GlobalModelRounds(env.layout.pack(env.init_state()))
        outcomes = []
        strategy.on_round_end = lambda eng, out: outcomes.append(out)
        engine.run(strategy, n_rounds, RunHistory("test", "x", 0))
        return engine, strategy, outcomes

    def test_stale_update_folds_next_round_with_discount(self, env_factory):
        env = env_factory(local_epochs=1)
        decay = 0.5
        scenario = ScenarioConfig(
            client_fraction=0.5, straggler_rate=0.5, staleness_decay=decay
        )
        engine, strategy, outcomes = self._run_with_outcomes(
            env, scenario, n_rounds=4
        )
        folded = [set(out.stale.tolist()) for out in outcomes]
        assert any(folded), "seeded scenario should fold at least one update"
        for prev, out in zip(outcomes, outcomes[1:]):
            fresh = {
                u.client_id for u in out.survivors if u.weight is None
            }
            # Every fold is a previous-round straggler that did not
            # deliver fresh work this round.
            assert set(out.stale.tolist()) <= set(prev.stragglers.tolist())
            assert not set(out.stale.tolist()) & fresh
            for update in out.survivors:
                if update.client_id in set(out.stale.tolist()):
                    assert update.weight == update.n_samples * decay

    def test_aggregation_renormalises_over_survivors_plus_stale(self, env_factory):
        """The folded round's server vector equals the weighted average
        with sample-count weights for fresh survivors and discounted
        weights for stale arrivals."""
        from repro.algorithms.base import cohort_matrix

        env = env_factory(local_epochs=1)
        scenario = ScenarioConfig(
            client_fraction=0.5, straggler_rate=0.5, staleness_decay=0.5
        )

        engine = RoundEngine(env, scenario)
        strategy = GlobalModelRounds(env.layout.pack(env.init_state()))
        captured = []

        original_aggregate = strategy.aggregate

        def spy(eng, round_index, survivors):
            captured.append((round_index, list(survivors)))
            return original_aggregate(eng, round_index, survivors)

        strategy.aggregate = spy
        engine.run(strategy, 4, RunHistory("test", "x", 0))
        stale_rounds = {r for r, _ in engine.stale_log}
        assert stale_rounds, "seeded scenario should fold at least once"
        round_index = max(stale_rounds)
        survivors = next(s for r, s in captured if r == round_index)
        weights = aggregation_weights(survivors)
        expected_last = env.layout.round_trip(
            packed_weighted_average(cohort_matrix(env, survivors), weights)
        )
        # Re-run and compare the state right after the folded round.
        engine2 = RoundEngine(env, scenario)
        strategy2 = GlobalModelRounds(env.layout.pack(env.init_state()))
        states = {}
        strategy2.on_round_end = lambda eng, out: states.__setitem__(
            out.round_index, strategy2.vector.copy()
        )
        engine2.run(strategy2, 4, RunHistory("test", "x", 0))
        np.testing.assert_array_equal(states[round_index], expected_last)

    def test_fresh_update_supersedes_stale(self, env_factory):
        """Full participation: every straggler trains fresh next round,
        so its stale copy is dropped and aggregation never sees two
        updates from one client."""
        env = env_factory(local_epochs=1)
        scenario = ScenarioConfig(straggler_rate=0.4, staleness_decay=0.5)
        engine, _, outcomes = self._run_with_outcomes(env, scenario)
        assert engine.stale_log == []
        for out in outcomes:
            ids = [u.client_id for u in out.survivors]
            assert len(ids) == len(set(ids))

    def test_zero_decay_discards_like_pr4(self, env_factory):
        """decay=0 must reproduce the discard semantics bit-for-bit."""
        env_a = env_factory(local_epochs=1)
        base = make_algorithm("fedavg").run(
            env_a,
            n_rounds=2,
            scenario=ScenarioConfig(client_fraction=0.5, straggler_rate=0.5),
        )
        env_b = env_factory(local_epochs=1)
        same = make_algorithm("fedavg").run(
            env_b,
            n_rounds=2,
            scenario=ScenarioConfig(
                client_fraction=0.5, straggler_rate=0.5, staleness_decay=0.0
            ),
        )
        np.testing.assert_array_equal(
            base.per_client_accuracy, same.per_client_accuracy
        )
        assert base.extras["stale_log"] == same.extras["stale_log"] == []


# ----------------------------------------------------------------------
# Per-client compute budgets
# ----------------------------------------------------------------------
class TestComputeBudgets:
    def _tasks(self, env):
        vector = env.layout.pack(env.init_state())
        return [
            UpdateTask(cid, flat=vector)
            for cid in range(env.federation.n_clients)
        ]

    def test_budget_caps_steps_and_sets_weights(self, env_factory):
        env = env_factory(local_epochs=2)
        engine = RoundEngine(env, ScenarioConfig(compute_budget=(1, 3)))
        out = engine.dispatch(self._tasks(env), 1)
        for update in out.survivors:
            assert 1 <= update.n_batches <= 3
            assert update.weight == float(update.n_batches)

    def test_zero_budget_client_contributes_no_update(self, env_factory):
        """A zero-step client returns the broadcast unchanged and is
        excluded from the weighted average entirely."""
        from repro.algorithms.base import cohort_matrix

        env = env_factory(local_epochs=1)
        engine = RoundEngine(env, ScenarioConfig(compute_budget=(0, 2)))
        strategy = GlobalModelRounds(env.layout.pack(env.init_state()))
        broadcast = strategy.vector.copy()
        outcomes = []
        strategy.on_round_end = lambda eng, out: outcomes.append(out)
        engine.run(strategy, 1, RunHistory("test", "x", 0))
        survivors = outcomes[0].survivors
        zero = [u for u in survivors if u.n_batches == 0]
        live = [u for u in survivors if u.n_batches > 0]
        assert zero, "seeded (0, 2) draw should zero out someone"
        assert live, "and someone should still work"
        for update in zero:
            np.testing.assert_array_equal(
                update.flat, env.layout.round_trip(broadcast)
            )
        # FedNova-style: the average is over positive-step clients with
        # steps-taken weights; the denominator is their total step count.
        weights = [float(u.n_batches) for u in live]
        expected = env.layout.round_trip(
            packed_weighted_average(cohort_matrix(env, live), weights)
        )
        np.testing.assert_array_equal(strategy.vector, expected)

    def test_budget_draws_are_seeded_per_round_and_client(self, env_factory):
        env = env_factory(local_epochs=2)
        scenario = ScenarioConfig(compute_budget=(1, 5))
        first = RoundEngine(env, scenario).dispatch(self._tasks(env), 2)
        second = RoundEngine(env, scenario).dispatch(self._tasks(env), 2)
        assert [u.n_batches for u in first.survivors] == [
            u.n_batches for u in second.survivors
        ]

    def test_all_zero_budgets_keep_the_server_state(self, env_factory):
        env = env_factory(local_epochs=1)
        engine = RoundEngine(env, ScenarioConfig(compute_budget=0))
        strategy = GlobalModelRounds(env.layout.pack(env.init_state()))
        before = strategy.vector.copy()
        history = RunHistory("test", "x", 0)
        engine.run(strategy, 1, history)
        np.testing.assert_array_equal(strategy.vector, before)
        # A frozen round must not report a fabricated 0.0 train loss —
        # zero-step updates are excluded from the round statistic.
        assert np.isnan(history.records[0].mean_train_loss)

    @pytest.mark.parametrize("algorithm", ["fedavg", "ifca"])
    def test_zero_budget_losses_do_not_bias_the_curve(
        self, env_factory, algorithm
    ):
        env = env_factory(local_epochs=1)
        result = make_algorithm(algorithm, **_KWARGS[algorithm]).run(
            env, n_rounds=2, scenario=ScenarioConfig(compute_budget=(0, 3))
        )
        for record in result.history.records:
            # Some client trained every round on this seeded config, so
            # the loss is a real mean over trained clients — finite and
            # strictly positive (a fabricated 0.0 would drag it down).
            assert record.mean_train_loss > 0.0


# ----------------------------------------------------------------------
# Fully-dark trace rounds
# ----------------------------------------------------------------------
class TestDarkRounds:
    def _dark_round_2_trace(self, m):
        return AvailabilityTrace({cid: [1, 3] for cid in range(m)})

    @pytest.mark.parametrize("algorithm", ["fedavg", "ifca", "cfl", "local_only"])
    def test_trace_scheduled_dark_round_freezes_the_server(
        self, env_factory, algorithm
    ):
        """A replayed schedule may leave a round with no eligible client
        at all: the round dispatches nothing, logs NaN train loss, and
        every model survives untouched."""
        env = env_factory(local_epochs=1)
        scenario = ScenarioConfig(trace=self._dark_round_2_trace(8))
        result = make_algorithm(algorithm, **_KWARGS[algorithm]).run(
            env, n_rounds=3, scenario=scenario
        )
        records = result.history.records
        assert [r.n_participants for r in records] == [8, 0, 8]
        assert np.isnan(records[1].mean_train_loss)
        # Evaluation still ran on cadence; the dark round changed nothing,
        # so its accuracy equals round 1's.
        assert records[1].mean_local_accuracy == records[0].mean_local_accuracy


# ----------------------------------------------------------------------
# CFL windowed delta cache: splits under partial participation
# ----------------------------------------------------------------------
class TestCFLWindowedSplits:
    def _run(self, env_factory, delta_window):
        env = env_factory(local_epochs=2)
        return make_algorithm(
            "cfl", warmup_rounds=1, delta_window=delta_window
        ).run(env, n_rounds=10, scenario=ScenarioConfig(client_fraction=0.2))

    def test_windowed_cache_restores_splits_at_low_c(self, env_factory):
        """At C=0.2 a full-cohort round never happens (2 of 8 clients per
        round), so the PR-4 criterion can never split; the windowed
        cache splits once the union of the last W rounds covers the
        cohort.  The split decision is pinned."""
        classic = self._run(env_factory, delta_window=1)
        assert classic.extras["split_rounds"] == []
        assert classic.n_clusters == 1

        windowed = self._run(env_factory, delta_window=8)
        assert windowed.extras["split_rounds"] == [8]
        assert windowed.n_clusters == 2
        np.testing.assert_array_equal(
            windowed.cluster_labels, [0, 1, 1, 1, 0, 1, 0, 1]
        )

    def test_cached_deltas_own_their_memory(self, env_factory):
        """Cache entries must be copies, not views into the round's full
        (cohort × n_params) delta matrix — a view would pin the whole
        matrix alive until the entry ages out of the window."""
        from repro.algorithms.cfl import CFL, _CFLRounds, _Cluster

        env = env_factory(local_epochs=1)
        algo = CFL(warmup_rounds=1, delta_window=3)
        m = env.federation.n_clients
        strategy = _CFLRounds(
            algo,
            [_Cluster(state=env.layout.pack(env.init_state()), members=np.arange(m))],
        )
        engine = RoundEngine(env, ScenarioConfig(client_fraction=0.5))
        engine.run(strategy, 1, RunHistory("test", "x", 0))
        caches = [c.delta_cache for c in strategy.clusters]
        assert any(caches), "half the cohort trained, so deltas were cached"
        for cache in caches:
            for _, row, _ in cache.values():
                assert row.base is None  # owns its buffer, pins nothing
                # Rows are held at the wire dtype, not the server's
                # float64 working precision — the cache's whole cost is
                # W x m x n_params, and float32 halves it.
                assert row.dtype == env.layout.wire_dtype

    def test_default_window_is_bit_identical_to_pr4(self, env_factory):
        """delta_window=1 (the default) must not change any number under
        scenarios the PR-4 engine already handled."""
        env = env_factory(local_epochs=1)
        scenario = ScenarioConfig(client_fraction=0.75, failure_rate=0.25)
        base = make_algorithm("cfl", warmup_rounds=1).run(
            env, n_rounds=3, scenario=scenario
        )
        env = env_factory(local_epochs=1)
        explicit = make_algorithm("cfl", warmup_rounds=1, delta_window=1).run(
            env, n_rounds=3, scenario=scenario
        )
        np.testing.assert_array_equal(
            base.per_client_accuracy, explicit.per_client_accuracy
        )
        assert base.extras["split_rounds"] == explicit.extras["split_rounds"]


# ----------------------------------------------------------------------
# Evaluation cadence: off-cadence rounds are "not measured", not stale
# ----------------------------------------------------------------------
class TestEvalCadence:
    def test_off_cadence_rounds_record_nan(self, env_factory):
        """With eval_every=3 over 4 rounds only rounds 3 and 4 (the
        final round always evaluates) carry a measurement; rounds 1-2
        must say NaN + evaluated=False instead of replaying the last
        evaluation as if it were fresh."""
        env = env_factory(local_epochs=1)
        result = make_algorithm("fedavg").run(env, n_rounds=4, eval_every=3)
        records = result.history.records
        assert [r.evaluated for r in records] == [False, False, True, True]
        assert np.isnan(records[0].mean_local_accuracy)
        assert np.isnan(records[1].mean_local_accuracy)
        assert np.isfinite(records[2].mean_local_accuracy)
        assert np.isfinite(records[3].mean_local_accuracy)

    def test_best_accuracy_ignores_unevaluated_rounds(self, env_factory):
        """Python's max() is poisoned by NaN ordering — best_accuracy
        must compete only evaluated records."""
        env = env_factory(local_epochs=1)
        result = make_algorithm("fedavg").run(env, n_rounds=4, eval_every=3)
        history = result.history
        assert np.isfinite(history.best_accuracy)
        assert history.best_accuracy == max(
            r.mean_local_accuracy for r in history.records if r.evaluated
        )
        payload = history.to_dict()
        assert payload["evaluated_rounds"] == [3, 4]
        assert np.isfinite(payload["best_accuracy"])

    def test_rounds_to_accuracy_is_nan_safe(self):
        """NaN >= target is False, so unevaluated rounds can never be
        reported as the round a target was reached."""
        history = RunHistory("fedavg", "x", 0)
        for i, (acc, evaluated) in enumerate(
            [(float("nan"), False), (0.9, True)], start=1
        ):
            history.append(
                RoundRecord(
                    round_index=i,
                    mean_train_loss=0.0,
                    mean_local_accuracy=acc,
                    n_participants=1,
                    n_clusters=1,
                    uploaded_params=0,
                    downloaded_params=0,
                    evaluated=evaluated,
                )
            )
        assert history.rounds_to_accuracy(0.5) == 2


# ----------------------------------------------------------------------
# Client-state store integration: the population-scale path keeps pins
# ----------------------------------------------------------------------
class TestStoreIntegration:
    """The store swap is a memory policy, never a numerics change.

    ``local_only`` is the only algorithm with O(population) state, so it
    is where the sharded store must prove bit-identity; fedavg with a
    single-edge tier pins the ``edge_size >= cohort`` fold to the flat
    GEMV the Table-I numbers run on.
    """

    _SHARDED = StoreConfig(kind="sharded", shard_size=3)

    def test_local_only_pin_holds_on_sharded_store(self, env_factory):
        env = env_factory("serial", store=self._SHARDED)
        result = make_algorithm("local_only").run(env, n_rounds=3)
        acc, loss, uploaded, downloaded = _PINS["local_only"]
        assert result.final_accuracy == acc
        assert result.history.records[-1].mean_train_loss == loss
        assert env.tracker.total_uploaded == uploaded
        assert env.tracker.total_downloaded == downloaded

    def test_sharded_matches_dense_under_scenario(self, env_factory):
        scenario = ScenarioConfig(
            client_fraction=0.5, failure_rate=0.25, straggler_rate=0.25
        )
        results = {}
        for store in (None, self._SHARDED):
            env = env_factory("serial", local_epochs=1, store=store)
            results[store] = make_algorithm("local_only").run(
                env, n_rounds=3, scenario=scenario
            )
        dense, sharded = results[None], results[self._SHARDED]
        assert sharded.final_accuracy == dense.final_accuracy
        np.testing.assert_array_equal(
            sharded.per_client_accuracy, dense.per_client_accuracy
        )

    @pytest.mark.parametrize("executor", ["thread", "process", "batched"])
    def test_sharded_store_cell_identical_across_executors(
        self, env_factory, executor
    ):
        scenario = ScenarioConfig(client_fraction=0.75, failure_rate=0.25)

        def run(kind):
            env = env_factory(kind, local_epochs=1, store=self._SHARDED)
            try:
                return make_algorithm("local_only").run(
                    env, n_rounds=2, scenario=scenario
                )
            finally:
                env.close()

        serial = run("serial")
        other = run(executor)
        assert serial.final_accuracy == other.final_accuracy
        np.testing.assert_array_equal(
            serial.per_client_accuracy, other.per_client_accuracy
        )

    def test_local_only_resume_through_sharded_store(
        self, env_factory, tmp_path
    ):
        def run(d, resume, n_rounds):
            env = env_factory("serial", local_epochs=1, store=self._SHARDED)
            return make_algorithm("local_only").run(
                env,
                n_rounds=n_rounds,
                scenario=ScenarioConfig(
                    failure_rate=0.2,
                    checkpoint=CheckpointConfig(directory=d, resume=resume),
                ),
            )

        ref = run(tmp_path / "ref", False, 4)
        run(tmp_path / "cut", False, 2)
        resumed = run(tmp_path / "cut", True, 4)
        assert resumed.final_accuracy == ref.final_accuracy
        np.testing.assert_array_equal(
            resumed.per_client_accuracy, ref.per_client_accuracy
        )
        assert [
            (r.round_index, r.mean_train_loss) for r in resumed.history.records
        ] == [(r.round_index, r.mean_train_loss) for r in ref.history.records]

    def test_single_edge_tier_keeps_fedavg_pin(self, env_factory):
        # edge_size >= cohort: one edge, one GEMV — bit-identical to the
        # flat path, so the seeded pin must hold verbatim.
        env = env_factory("serial", store=StoreConfig(edge_size=64))
        result = make_algorithm("fedavg").run(env, n_rounds=3)
        acc, loss, uploaded, downloaded = _PINS["fedavg"]
        assert result.final_accuracy == acc
        assert result.history.records[-1].mean_train_loss == loss
        assert env.tracker.total_uploaded == uploaded
        assert env.tracker.total_downloaded == downloaded

    def test_multi_edge_tier_is_deterministic_and_close(self, env_factory):
        def run(edge_size):
            env = env_factory("serial", local_epochs=1, store=StoreConfig(
                edge_size=edge_size))
            return make_algorithm("fedavg").run(env, n_rounds=2)

        flat = run(0)
        tiered_a = run(3)
        tiered_b = run(3)
        # controlled associativity: same fold order, same bits
        np.testing.assert_array_equal(
            tiered_a.per_client_accuracy, tiered_b.per_client_accuracy
        )
        # vs the flat GEMV only the summation tree differs
        np.testing.assert_allclose(
            tiered_a.per_client_accuracy,
            flat.per_client_accuracy,
            atol=0.05,
        )
