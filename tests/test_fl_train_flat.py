"""Batched cohort training: parity with the serial reference kernel.

The contract under test (see ``repro/fl/train_flat.py``): lockstep
batched training consumes the *same* per-(round, client) RNG streams and
produces the *same* minibatch schedules as the serial trainer, so every
per-client update matches the serial path to float summation order —
for both weight representations (dense plane views and shared-base
factored), for FedProx's anchored objective, under ragged dataset sizes
with zero-weight padding, and end-to-end on the Table-I metric.
Architectures without a batched mirror must route to the serial kernel
bit-identically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataloader import DataLoader
from repro.data.federation import build_federation
from repro.fl.config import TrainConfig
from repro.fl.parallel import (
    BatchedClientExecutor,
    SerialClientExecutor,
    UpdateTask,
    make_executor,
)
from repro.fl.simulation import FederatedEnv
from repro.fl.train_flat import (
    plan_cohort_schedule,
    select_factored_keys,
    supports_batched,
    train_cohort_flat,
)
from repro.nn.state_flat import LazyStateView, unpack_state
from repro.utils.rng import rng_for

#: Absolute tolerance for batched-vs-serial float32-model updates.
#: Both paths do the same arithmetic in a different association order;
#: observed worst-case deviations are ~1e-7 per step on unit-scale
#: weights (see BENCH_train.json's max_update_abs_diff for the 1.6M
#: preset trajectory).
ATOL = 5e-5


@pytest.fixture(scope="module")
def mlp_env_factory():
    """Environment factory over a small ragged Dirichlet federation."""
    federation = build_federation(
        "cifar10",
        n_clients=6,
        n_samples=700,
        seed=11,
        partition="dirichlet",
        alpha=0.3,
    )

    def make(train_cfg: TrainConfig, hidden=(96,), executor=None, seed=0):
        return FederatedEnv(
            federation,
            model_name="mlp",
            model_kwargs={"hidden": hidden},
            train_cfg=train_cfg,
            seed=seed,
            executor=executor,
        )

    return make


def _broadcast_tasks(env, prox_mu: float = 0.0):
    init = env.init_state()
    return [
        UpdateTask(cid, init, prox_mu=prox_mu)
        for cid in range(env.federation.n_clients)
    ]


def _assert_parity(serial_updates, batched_updates, atol=ATOL):
    assert len(serial_updates) == len(batched_updates)
    for s, b in zip(serial_updates, batched_updates):
        assert s.client_id == b.client_id
        assert s.n_samples == b.n_samples
        assert s.n_batches == b.n_batches
        np.testing.assert_allclose(b.flat, s.flat, rtol=0, atol=atol)
        assert s.mean_loss == pytest.approx(b.mean_loss, rel=1e-4, abs=1e-6)


# ----------------------------------------------------------------------
# The tier-1 parity gate
# ----------------------------------------------------------------------
class TestBatchedSerialParity:
    def test_per_client_updates_match_serial(self, mlp_env_factory):
        """The headline gate: same RNG keys, same minibatch order, same
        updates (to float64-comparison tolerance) for a ragged cohort
        with momentum — dense and factored layers both in play."""
        env = mlp_env_factory(
            TrainConfig(local_epochs=2, batch_size=32, lr=0.05, momentum=0.9)
        )
        tasks = _broadcast_tasks(env)
        serial = SerialClientExecutor().run(env, tasks, round_index=3)
        batched = BatchedClientExecutor().run(env, tasks, round_index=3)
        _assert_parity(serial, batched)

    def test_factored_and_dense_modes_agree(self, mlp_env_factory):
        """Forcing every linear weight factored vs every weight dense
        gives the same updates — the representations are two kernels for
        one computation."""
        env = mlp_env_factory(
            TrainConfig(local_epochs=1, batch_size=32, lr=0.05, momentum=0.9),
            hidden=(128,),
        )
        vector = env.layout.pack(env.init_state())
        cids = list(range(env.federation.n_clients))
        dense = train_cohort_flat(
            env, cids, vector, round_index=1, factored_keys=frozenset()
        )
        factored = train_cohort_flat(
            env,
            cids,
            vector,
            round_index=1,
            factored_keys=frozenset({"fc1.weight", "classifier.weight"}),
        )
        _assert_parity(dense, factored)

    def test_weight_decay_parity(self, mlp_env_factory):
        """Weight decay bends the factored base coefficient away from 1
        — the scalar recurrence must track the serial optimiser."""
        env = mlp_env_factory(
            TrainConfig(
                local_epochs=2,
                batch_size=32,
                lr=0.05,
                momentum=0.9,
                weight_decay=1e-3,
            )
        )
        tasks = _broadcast_tasks(env)
        serial = SerialClientExecutor().run(env, tasks, round_index=1)
        batched = BatchedClientExecutor().run(env, tasks, round_index=1)
        _assert_parity(serial, batched)

    def test_max_steps_and_max_batches_caps(self, mlp_env_factory):
        """Serial cap semantics: per-epoch ``max_batches``, total
        ``max_steps`` checked before each step — clients hit the caps at
        different lockstep positions and must stop exactly where the
        serial loop stops."""
        for cfg in (
            TrainConfig(local_epochs=3, batch_size=16, lr=0.05, max_steps=4),
            TrainConfig(local_epochs=2, batch_size=16, lr=0.05, max_batches=2),
        ):
            env = mlp_env_factory(cfg)
            tasks = _broadcast_tasks(env)
            serial = SerialClientExecutor().run(env, tasks, round_index=2)
            batched = BatchedClientExecutor().run(env, tasks, round_index=2)
            _assert_parity(serial, batched)

    def test_round_index_drives_stream(self, mlp_env_factory):
        """Different rounds shuffle differently (same contract as the
        serial executors)."""
        env = mlp_env_factory(
            TrainConfig(local_epochs=1, batch_size=32, lr=0.05, momentum=0.9)
        )
        tasks = _broadcast_tasks(env)
        a = BatchedClientExecutor().run(env, tasks, round_index=1)
        b = BatchedClientExecutor().run(env, tasks, round_index=2)
        assert not np.allclose(a[0].flat, b[0].flat)

    def test_two_broadcasts_group_into_two_cohorts(self, mlp_env_factory):
        """Tasks carrying different incoming states train as separate
        cohorts and still match the serial path per client."""
        env = mlp_env_factory(
            TrainConfig(local_epochs=1, batch_size=32, lr=0.05, momentum=0.9)
        )
        init = env.init_state()
        other = {k: v + np.float32(0.01) for k, v in init.items()}
        tasks = [
            UpdateTask(cid, init if cid % 2 == 0 else other)
            for cid in range(env.federation.n_clients)
        ]
        serial = SerialClientExecutor().run(env, tasks, round_index=1)
        batched = BatchedClientExecutor().run(env, tasks, round_index=1)
        _assert_parity(serial, batched)


# ----------------------------------------------------------------------
# Ragged cohorts: padding must not leak
# ----------------------------------------------------------------------
class TestRaggedPadding:
    def test_padded_client_update_unaffected_by_cohort(self, mlp_env_factory):
        """A small client's update is the same whether it trains alone
        (no padding) or inside a cohort of larger clients (its batches
        padded to the cohort width with zero-weight rows)."""
        env = mlp_env_factory(
            TrainConfig(local_epochs=2, batch_size=32, lr=0.05, momentum=0.9)
        )
        sizes = [len(c.train) for c in env.federation.clients]
        small = int(np.argmin(sizes))
        assert sizes[small] < max(sizes), "fixture must be ragged"
        vector = env.layout.pack(env.init_state())
        alone = train_cohort_flat(env, [small], vector, round_index=1)
        cohort = train_cohort_flat(
            env, list(range(env.federation.n_clients)), vector, round_index=1
        )
        np.testing.assert_allclose(
            cohort[small].flat, alone[0].flat, rtol=0, atol=1e-6
        )
        assert cohort[small].n_batches == alone[0].n_batches
        assert cohort[small].mean_loss == pytest.approx(
            alone[0].mean_loss, rel=1e-5
        )

    def test_schedule_matches_dataloader_batches(self, mlp_env_factory):
        """plan_cohort_schedule reproduces the serial DataLoader's batch
        composition exactly: same permutations, same slicing, same
        effective batch size ``min(batch_size, n)``."""
        env = mlp_env_factory(
            TrainConfig(local_epochs=2, batch_size=32, lr=0.05, momentum=0.9)
        )
        cfg = env.train_cfg
        sizes = [len(c.train) for c in env.federation.clients]
        rngs = [rng_for(env.seed, 1, 5, cid) for cid in range(len(sizes))]
        steps, width = plan_cohort_schedule(sizes, cfg, rngs)
        assert width == min(cfg.batch_size, max(sizes))
        for cid, dataset in enumerate(
            c.train for c in env.federation.clients
        ):
            loader = DataLoader(
                dataset,
                min(cfg.batch_size, len(dataset)),
                rng=rng_for(env.seed, 1, 5, cid),
                shuffle=True,
            )
            serial_batches = []
            for _ in range(cfg.local_epochs):
                for images, labels in loader:
                    serial_batches.append((images, labels))
            mine = [s.indices[cid] for s in steps if s.indices[cid] is not None]
            assert len(mine) == len(serial_batches)
            for idx, (images, labels) in zip(mine, serial_batches):
                np.testing.assert_array_equal(dataset.images[idx], images)
                np.testing.assert_array_equal(dataset.labels[idx], labels)

    def test_empty_dataset_raises(self, mlp_env_factory):
        env = mlp_env_factory(TrainConfig(local_epochs=1, batch_size=8, lr=0.1))
        with pytest.raises(ValueError, match="empty dataset"):
            plan_cohort_schedule([32, 0], env.train_cfg, [None, None])


# ----------------------------------------------------------------------
# FedProx on the batched plane
# ----------------------------------------------------------------------
class TestFedProxAnchor:
    def test_proximal_updates_match_serial(self, mlp_env_factory):
        """The batched proximal term anchors on the shared broadcast —
        exactly what ProximalSGD.set_anchor_flat gives the serial path."""
        env = mlp_env_factory(
            TrainConfig(local_epochs=2, batch_size=32, lr=0.05, momentum=0.9)
        )
        tasks = _broadcast_tasks(env, prox_mu=0.5)
        serial = SerialClientExecutor().run(env, tasks, round_index=1)
        batched = BatchedClientExecutor().run(env, tasks, round_index=1)
        _assert_parity(serial, batched)

    def test_proximal_pull_shrinks_drift(self, mlp_env_factory):
        """Sanity on semantics, not just parity: a large mu keeps the
        batched updates closer to the broadcast than mu = 0 does."""
        env = mlp_env_factory(
            TrainConfig(local_epochs=2, batch_size=32, lr=0.05, momentum=0.9)
        )
        vector = env.layout.pack(env.init_state())
        cids = list(range(env.federation.n_clients))
        free = train_cohort_flat(env, cids, vector, round_index=1, prox_mu=0.0)
        pulled = train_cohort_flat(env, cids, vector, round_index=1, prox_mu=5.0)
        drift_free = np.linalg.norm(np.stack([u.flat for u in free]) - vector)
        drift_pulled = np.linalg.norm(np.stack([u.flat for u in pulled]) - vector)
        assert drift_pulled < drift_free


# ----------------------------------------------------------------------
# Routing: conv models fall back to the serial kernel
# ----------------------------------------------------------------------
class TestConvFallback:
    def test_conv_model_routes_serial_and_is_bit_identical(self, small_env):
        assert not supports_batched(small_env.scratch_model)
        tasks = _broadcast_tasks(small_env)
        serial = SerialClientExecutor().run(small_env, tasks, round_index=1)
        executor = BatchedClientExecutor()
        routed = executor.run(small_env, tasks, round_index=1)
        assert executor.last_dispatch == {
            "batched": 0,
            "serial": small_env.federation.n_clients,
        }
        for s, r in zip(serial, routed):
            np.testing.assert_array_equal(s.flat, r.flat)

    def test_mlp_model_routes_batched(self, mlp_env_factory):
        env = mlp_env_factory(
            TrainConfig(local_epochs=1, batch_size=32, lr=0.05, momentum=0.9)
        )
        assert supports_batched(env.scratch_model)
        executor = BatchedClientExecutor()
        executor.run(env, _broadcast_tasks(env), round_index=1)
        assert executor.last_dispatch == {
            "batched": env.federation.n_clients,
            "serial": 0,
        }

    def test_make_executor_knows_batched(self):
        assert isinstance(make_executor("batched"), BatchedClientExecutor)


# ----------------------------------------------------------------------
# Representation selection and lazy update states
# ----------------------------------------------------------------------
class TestRepresentationPlumbing:
    def test_factored_selection_respects_rank_bound(self, mlp_env_factory):
        env = mlp_env_factory(
            TrainConfig(local_epochs=1, batch_size=32, lr=0.05), hidden=(128,)
        )
        # rank 32 < 128: hidden layer factored; classifier (10 outputs)
        # always dense.
        keys = select_factored_keys(env.scratch_model, 6, 1, 32)
        assert "fc1.weight" in keys
        assert "classifier.weight" not in keys
        # rank beyond the hidden width: nothing factored.
        assert select_factored_keys(env.scratch_model, 6, 10, 32) == frozenset()

    def test_updates_carry_lazy_state_views(self, mlp_env_factory):
        env = mlp_env_factory(
            TrainConfig(local_epochs=1, batch_size=32, lr=0.05, momentum=0.9)
        )
        vector = env.layout.pack(env.init_state())
        (update,) = train_cohort_flat(env, [0], vector, round_index=1)
        assert isinstance(update.state, LazyStateView)
        # Key iteration must not unpack...
        assert list(update.state) == list(env.layout.keys)
        assert update.state._dict is None
        # ...value access materialises once and matches the flat row.
        expected = unpack_state(update.flat, env.layout)
        for key in expected:
            np.testing.assert_array_equal(update.state[key], expected[key])

    def test_lazy_state_loads_into_model(self, mlp_env_factory):
        env = mlp_env_factory(
            TrainConfig(local_epochs=1, batch_size=32, lr=0.05, momentum=0.9)
        )
        vector = env.layout.pack(env.init_state())
        (update,) = train_cohort_flat(env, [1], vector, round_index=1)
        env.scratch_model.load_state_dict(dict(update.state))
        repacked = env.layout.pack(env.scratch_model.state_dict(copy=False))
        np.testing.assert_array_equal(repacked, update.flat)


class TestBatchedDropout:
    def test_inverted_dropout_scaling_and_backward(self):
        from repro.nn.batched import BatchedDropout

        rng = np.random.default_rng(3)
        layer = BatchedDropout(0.25, np.random.default_rng(0))
        x = rng.standard_normal((2, 4, 8)).astype(np.float32)
        y = layer.forward(x)
        kept = y != 0
        # Inverted scaling: surviving entries are x / keep_prob.
        np.testing.assert_allclose(y[kept], (x / 0.75)[kept], rtol=1e-6)
        go = np.ones_like(x)
        gi = layer.backward(go)
        np.testing.assert_array_equal(gi != 0, kept)

    def test_zero_p_is_identity(self):
        from repro.nn.batched import BatchedDropout

        layer = BatchedDropout(0.0, np.random.default_rng(0))
        x = np.ones((1, 2, 3), dtype=np.float32)
        assert layer.forward(x) is x
        go = np.full_like(x, 2.0)
        assert layer.backward(go) is go

    def test_builder_requires_dropout_rng(self):
        from repro.nn.batched import build_batched
        from repro.nn.layers import Dropout, Flatten, Linear, ReLU
        from repro.nn.module import Sequential
        from repro.nn.state_flat import StateLayout

        rng = np.random.default_rng(0)
        model = Sequential(
            ("flatten", Flatten()),
            ("fc1", Linear(12, 8, rng)),
            ("act1", ReLU()),
            ("drop", Dropout(0.5, rng)),
            ("classifier", Linear(8, 4, rng)),
        ).finalize_names()
        layout = StateLayout.from_model(model)
        broadcast = layout.pack(model.state_dict(copy=False))
        with pytest.raises(ValueError, match="dropout_rng"):
            build_batched(model, layout, 3, broadcast)
        batched, _ = build_batched(
            model, layout, 3, broadcast, dropout_rng=np.random.default_rng(1)
        )
        out = batched.forward(np.ones((3, 5, 12), dtype=np.float32))
        assert out.shape == (3, 5, 4)


# ----------------------------------------------------------------------
# End-to-end: the Table-I metric is executor-invariant on a seeded config
# ----------------------------------------------------------------------
class TestTableOneParity:
    def _accuracies(self, executor_kind: str, algorithm):
        federation = build_federation(
            "cifar10",
            n_clients=8,
            n_samples=800,
            seed=5,
            partition="label_cluster",
        )
        env = FederatedEnv(
            federation,
            model_name="mlp",
            model_kwargs={"hidden": (96,)},
            train_cfg=TrainConfig(
                local_epochs=2, batch_size=32, lr=0.05, momentum=0.9
            ),
            seed=2,
            executor=executor_kind,
        )
        result = algorithm().run(env, n_rounds=3)
        return result.final_accuracy, result.per_client_accuracy

    def test_fedavg_accuracy_identical_across_executors(self):
        """The seeded Table-I gate: per-client accuracies from the
        batched executor equal the serial ones exactly (updates differ
        at float32 round-off; no argmax flips on this seeded config —
        any real regression flips many)."""
        from repro.algorithms.fedavg import FedAvg

        serial_mean, serial_acc = self._accuracies("serial", FedAvg)
        batched_mean, batched_acc = self._accuracies("batched", FedAvg)
        np.testing.assert_array_equal(serial_acc, batched_acc)
        assert serial_mean == batched_mean

    def test_ifca_accuracy_identical_across_executors(self):
        from repro.algorithms.ifca import IFCA

        serial_mean, serial_acc = self._accuracies(
            "serial", lambda: IFCA(n_clusters=2)
        )
        batched_mean, batched_acc = self._accuracies(
            "batched", lambda: IFCA(n_clusters=2)
        )
        np.testing.assert_array_equal(serial_acc, batched_acc)
        assert serial_mean == batched_mean


# ----------------------------------------------------------------------
# Budget-aware factored routing (regression: cohort-max rank forced
# budgeted cohorts dense)
# ----------------------------------------------------------------------
class TestBudgetAwareFactoredRouting:
    _CFG = TrainConfig(local_epochs=4, batch_size=32, lr=0.05, momentum=0.9)

    def test_mean_step_rank_replaces_cohort_max(self, mlp_env_factory):
        env = mlp_env_factory(self._CFG, hidden=(128,))
        model = env.scratch_model
        # Unbudgeted 16-step cohort: rank 16 x 32 = 512 > 128 -> dense.
        assert select_factored_keys(model, 6, 16, 32) == frozenset()
        # Every member budgeted to (1, 2) steps: the effective rank is
        # the mean (<= 2 x 32 = 64 < 128), not the lockstep length.
        keys = select_factored_keys(
            model, 6, 16, 32, step_counts=[1, 2, 1, 2, 1, 2]
        )
        assert "fc1.weight" in keys
        assert "classifier.weight" not in keys

    def test_one_unbudgeted_client_no_longer_forces_dense(
        self, mlp_env_factory
    ):
        """The old cohort-max criterion let a single full-length member
        veto factoring for everyone; the mean keeps the typical member's
        rank in charge."""
        env = mlp_env_factory(self._CFG, hidden=(128,))
        # mean([1]*5 + [16]) = 3.5 -> rank 112 < 128: factored.
        keys = select_factored_keys(
            env.scratch_model, 6, 16, 32, step_counts=[1, 1, 1, 1, 1, 16]
        )
        assert "fc1.weight" in keys

    def test_uniform_step_counts_leave_selection_unchanged(
        self, mlp_env_factory
    ):
        env = mlp_env_factory(self._CFG, hidden=(128,))
        for n_steps in (1, 10, 16):
            np.testing.assert_equal(
                select_factored_keys(env.scratch_model, 6, n_steps, 32),
                select_factored_keys(
                    env.scratch_model, 6, n_steps, 32, step_counts=[n_steps] * 6
                ),
            )

    def test_step_counts_length_is_validated(self, mlp_env_factory):
        env = mlp_env_factory(self._CFG, hidden=(128,))
        with pytest.raises(ValueError, match="step_counts"):
            select_factored_keys(
                env.scratch_model, 6, 4, 32, step_counts=[1, 2]
            )

    def test_batched_budget_cohort_routes_factored(
        self, mlp_env_factory, monkeypatch
    ):
        """End to end through the batched executor: a cohort whose every
        member carries a (1, 2)-step budget must select the factored
        representation even though the unbudgeted schedule would not."""
        import repro.fl.train_flat as train_flat

        calls = []
        orig = train_flat.select_factored_keys

        def spy(*args, **kwargs):
            keys = orig(*args, **kwargs)
            calls.append((keys, kwargs.get("step_counts")))
            return keys

        monkeypatch.setattr(train_flat, "select_factored_keys", spy)
        env = mlp_env_factory(self._CFG, hidden=(128,), executor="batched")
        vector = env.layout.pack(env.init_state())
        tasks = [
            UpdateTask(cid, flat=vector, max_steps=1 + cid % 2)
            for cid in range(env.federation.n_clients)
        ]
        updates = env.run_updates(tasks, 1)
        assert len(updates) == env.federation.n_clients
        assert calls, "the batched path selects its representation"
        keys, step_counts = calls[-1]
        assert "fc1.weight" in keys
        assert step_counts is not None and max(step_counts) <= 2
        # The budget really truncated the work, not just the estimate.
        assert all(u.n_batches <= 2 for u in updates)
