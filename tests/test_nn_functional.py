"""Functional kernels: im2col/col2im adjointness, softmax, one-hot."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.functional import (
    col2im,
    conv_output_size,
    im2col,
    log_softmax,
    one_hot,
    pad_nchw,
    sliding_windows,
    softmax,
)


class TestConvOutputSize:
    @pytest.mark.parametrize(
        "size,kernel,stride,padding,expected",
        [(32, 5, 1, 0, 28), (28, 5, 1, 2, 28), (28, 2, 2, 0, 14), (7, 3, 2, 1, 4)],
    )
    def test_known_values(self, size, kernel, stride, padding, expected):
        assert conv_output_size(size, kernel, stride, padding) == expected

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError, match="non-positive"):
            conv_output_size(2, 5, 1, 0)


class TestIm2col:
    def test_shapes(self, rng):
        x = rng.standard_normal((2, 3, 8, 8))
        cols, (oh, ow) = im2col(x, 3, 3, 1, 0)
        assert (oh, ow) == (6, 6)
        assert cols.shape == (2 * 36, 3 * 9)

    def test_window_content(self, rng):
        x = rng.standard_normal((1, 1, 4, 4))
        cols, _ = im2col(x, 2, 2, 1, 0)
        # First window = top-left 2x2 patch, row-major.
        np.testing.assert_allclose(cols[0], x[0, 0, :2, :2].ravel())
        # Window at output position (1, 2).
        np.testing.assert_allclose(
            cols[1 * 3 + 2], x[0, 0, 1:3, 2:4].ravel()
        )

    def test_padding_zeros(self, rng):
        x = rng.standard_normal((1, 1, 2, 2))
        cols, (oh, ow) = im2col(x, 3, 3, 1, 1)
        assert (oh, ow) == (2, 2)
        # Top-left window's first row is all padding.
        np.testing.assert_allclose(cols[0][:3], 0.0)

    def test_adjointness(self, rng):
        """col2im is the exact adjoint of im2col: <im2col(x), y> == <x, col2im(y)>."""
        x = rng.standard_normal((2, 3, 6, 7))
        for kernel, stride, padding in [(3, 1, 0), (3, 2, 1), (2, 2, 0), (5, 1, 2)]:
            cols, _ = im2col(x, kernel, kernel, stride, padding)
            y = rng.standard_normal(cols.shape)
            lhs = float((cols * y).sum())
            back = col2im(y, x.shape, kernel, kernel, stride, padding)
            rhs = float((x * back).sum())
            assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_sliding_windows_is_view(self, rng):
        x = rng.standard_normal((1, 1, 5, 5))
        win = sliding_windows(x, 3, 3, 1)
        assert win.shape == (1, 1, 3, 3, 3, 3)
        assert win.base is not None  # no copy

    def test_pad_zero_is_noop(self, rng):
        x = rng.standard_normal((1, 1, 3, 3))
        assert pad_nchw(x, 0) is x


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        s = softmax(rng.standard_normal((5, 7)))
        np.testing.assert_allclose(s.sum(axis=1), 1.0, rtol=1e-12)

    def test_shift_invariance(self, rng):
        logits = rng.standard_normal((3, 4))
        np.testing.assert_allclose(softmax(logits), softmax(logits + 100.0), rtol=1e-10)

    def test_extreme_logits_stable(self):
        logits = np.array([[1000.0, -1000.0]])
        s = softmax(logits)
        assert np.isfinite(s).all()
        np.testing.assert_allclose(s[0], [1.0, 0.0], atol=1e-12)

    def test_log_softmax_consistency(self, rng):
        logits = rng.standard_normal((4, 6))
        np.testing.assert_allclose(
            log_softmax(logits), np.log(softmax(logits)), rtol=1e-8
        )


class TestOneHot:
    def test_basic(self):
        out = one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(
            out, [[1, 0, 0], [0, 0, 1], [0, 1, 0]]
        )

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError, match="labels must lie"):
            one_hot(np.array([0, 3]), 3)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            one_hot(np.array([-1]), 3)

    def test_2d_raises(self):
        with pytest.raises(ValueError, match="1-D"):
            one_hot(np.zeros((2, 2), dtype=int), 3)
