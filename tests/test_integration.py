"""End-to-end integration tests of the paper's claims (small scale).

Each test exercises a full pipeline across multiple subsystems — data
generation → federation → training → clustering → evaluation — and
asserts the *behavioural* claims the reproduction rests on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.fedavg import FedAvg
from repro.cluster.metrics import adjusted_rand_index
from repro.core.clustering import ClusteringConfig
from repro.core.fedclust import FedClust, FedClustConfig
from repro.data.federation import build_federation
from repro.fl.config import TrainConfig
from repro.fl.parallel import ThreadClientExecutor
from repro.fl.simulation import FederatedEnv

pytestmark = pytest.mark.slow

_CFG = TrainConfig(local_epochs=1, batch_size=32, lr=0.05, momentum=0.9)
_FEDCLUST = FedClustConfig(
    warmup_steps=15, warmup_lr=0.01, warm_start_final_layer=True
)


def _env(federation, seed=0, **kwargs):
    return FederatedEnv(
        federation,
        model_name="cnn_small",
        model_kwargs={"width": 4, "fc_dim": 16},
        train_cfg=_CFG,
        seed=seed,
        **kwargs,
    )


class TestPaperClaims:
    def test_one_shot_cluster_recovery(self, planted_federation):
        """Claim: clustering happens in ONE round and recovers the groups."""
        env = _env(planted_federation)
        fitted = FedClust(_FEDCLUST).clustering_round(env)
        assert (
            adjusted_rand_index(planted_federation.true_groups, fitted.labels) == 1.0
        )
        # Exactly one broadcast down + one partial upload happened.
        assert env.tracker.downloaded_in("clustering") == (
            env.n_params * planted_federation.n_clients
        )

    def test_fedclust_beats_fedavg_on_planted_groups(self, planted_federation):
        """Claim: clustered training beats the single global model."""
        env_c = _env(planted_federation)
        acc_fedclust = FedClust(_FEDCLUST).run(env_c, n_rounds=4, eval_every=4)
        env_a = _env(planted_federation)
        acc_fedavg = FedAvg().run(env_a, n_rounds=4, eval_every=4)
        assert acc_fedclust.final_accuracy > acc_fedavg.final_accuracy

    def test_training_improves_over_initialisation(self, planted_federation):
        env = _env(planted_federation)
        init_acc, _ = env.mean_local_accuracy(
            [env.init_state()] * planted_federation.n_clients
        )
        result = FedAvg().run(env, n_rounds=3, eval_every=3)
        assert result.final_accuracy > init_acc + 0.2

    def test_cluster_count_not_predefined(self, rng):
        """Claim: FedClust adapts k to the federation (3 planted groups)."""
        federation = build_federation(
            "fmnist",
            n_clients=9,
            n_samples=1800,
            seed=11,
            partition="label_cluster",
            groups=[[0, 1, 2], [3, 4, 5], [6, 7, 8]],
        )
        env = _env(federation, seed=11)
        fitted = FedClust(_FEDCLUST).clustering_round(env)
        assert fitted.n_clusters == 3
        assert adjusted_rand_index(federation.true_groups, fitted.labels) == 1.0

    def test_partial_upload_smaller_than_full(self, planted_federation):
        env = _env(planted_federation)
        FedClust(_FEDCLUST).clustering_round(env)
        uploaded = env.tracker.uploaded_in("clustering")
        full = env.n_params * planted_federation.n_clients
        assert uploaded < 0.25 * full


class TestReproducibility:
    def test_identical_runs_bitwise(self, planted_federation):
        results = []
        for _ in range(2):
            env = _env(planted_federation)
            results.append(
                FedClust(_FEDCLUST).run(env, n_rounds=3, eval_every=3)
            )
        a, b = results
        assert a.final_accuracy == b.final_accuracy
        np.testing.assert_array_equal(a.cluster_labels, b.cluster_labels)
        np.testing.assert_array_equal(
            a.history.accuracy_curve(), b.history.accuracy_curve()
        )

    def test_thread_executor_matches_serial_end_to_end(self, planted_federation):
        env_s = _env(planted_federation)
        serial = FedClust(_FEDCLUST).run(env_s, n_rounds=3, eval_every=3)
        executor = ThreadClientExecutor(n_workers=4)
        env_t = _env(planted_federation, executor=executor)
        try:
            threaded = FedClust(_FEDCLUST).run(env_t, n_rounds=3, eval_every=3)
        finally:
            executor.close()
        assert serial.final_accuracy == pytest.approx(
            threaded.final_accuracy, abs=1e-6
        )
        np.testing.assert_array_equal(serial.cluster_labels, threaded.cluster_labels)

    def test_different_seeds_differ(self, planted_federation):
        env_a = _env(planted_federation, seed=0)
        env_b = _env(planted_federation, seed=1)
        a = FedAvg().run(env_a, n_rounds=2, eval_every=2)
        b = FedAvg().run(env_b, n_rounds=2, eval_every=2)
        assert a.final_accuracy != b.final_accuracy


class TestHeterogeneityBehaviour:
    def test_fedclust_finds_one_cluster_on_iid(self):
        """Near-IID federation: the auto cut should not fabricate structure
        (gap guard) — accuracy must stay close to FedAvg's."""
        federation = build_federation(
            "fmnist", n_clients=8, n_samples=1600, seed=2, partition="iid"
        )
        env = _env(federation, seed=2)
        config = FedClustConfig(
            warmup_steps=15,
            warmup_lr=0.01,
            clustering=ClusteringConfig(cut="auto", min_gap_ratio=0.25),
        )
        fitted = FedClust(config).clustering_round(env)
        assert fitted.n_clusters == 1

    def test_dirichlet_run_end_to_end(self, dirichlet_federation):
        env = _env(dirichlet_federation)
        result = FedClust(_FEDCLUST).run(env, n_rounds=3, eval_every=3)
        assert 0.0 <= result.final_accuracy <= 1.0
        assert result.n_clusters >= 1
