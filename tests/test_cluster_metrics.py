"""Cluster-quality metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.distance import pairwise_euclidean
from repro.cluster.metrics import (
    adjusted_rand_index,
    contingency_table,
    group_separability,
    normalized_mutual_information,
    purity,
    silhouette_score,
)


class TestContingency:
    def test_counts(self):
        table = contingency_table(np.array([0, 0, 1, 1]), np.array([1, 1, 0, 1]))
        np.testing.assert_array_equal(table, [[0, 2], [1, 1]])

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="length"):
            contingency_table(np.zeros(3), np.zeros(4))


class TestARI:
    def test_identical_partitions(self):
        labels = np.array([0, 0, 1, 1, 2])
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    def test_permutation_invariance(self):
        a = np.array([0, 0, 1, 1, 2, 2])
        b = np.array([2, 2, 0, 0, 1, 1])  # same partition, renamed
        assert adjusted_rand_index(a, b) == pytest.approx(1.0)

    def test_independent_partitions_near_zero(self, rng):
        a = rng.integers(0, 3, size=2000)
        b = rng.integers(0, 3, size=2000)
        assert abs(adjusted_rand_index(a, b)) < 0.05

    def test_known_value(self):
        # Classic example: ARI of this pair is 0.24242...
        a = np.array([0, 0, 0, 1, 1, 1])
        b = np.array([0, 0, 1, 1, 2, 2])
        assert adjusted_rand_index(a, b) == pytest.approx(0.2424, abs=1e-3)

    def test_trivial_partitions(self):
        ones = np.zeros(5, dtype=int)
        assert adjusted_rand_index(ones, ones) == 1.0


class TestNMI:
    def test_identical(self):
        labels = np.array([0, 1, 1, 2])
        assert normalized_mutual_information(labels, labels) == pytest.approx(1.0)

    def test_bounds(self, rng):
        for _ in range(5):
            a = rng.integers(0, 4, size=50)
            b = rng.integers(0, 3, size=50)
            v = normalized_mutual_information(a, b)
            assert 0.0 <= v <= 1.0

    def test_permutation_invariance(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([1, 1, 0, 0])
        assert normalized_mutual_information(a, b) == pytest.approx(1.0)

    def test_constant_vs_varied(self):
        a = np.zeros(6, dtype=int)
        b = np.array([0, 1, 0, 1, 0, 1])
        assert normalized_mutual_information(a, b) == 0.0


class TestPurity:
    def test_perfect(self):
        labels = np.array([0, 0, 1, 1])
        assert purity(labels, labels) == 1.0

    def test_known_value(self):
        true = np.array([0, 0, 0, 1, 1, 1])
        pred = np.array([0, 0, 1, 1, 1, 1])
        # Cluster 0: majority 0 (2); cluster 1: majority 1 (3) → 5/6.
        assert purity(true, pred) == pytest.approx(5 / 6)


class TestSilhouette:
    def test_well_separated_near_one(self, rng):
        points = np.vstack(
            [rng.standard_normal((8, 2)) * 0.05, rng.standard_normal((8, 2)) * 0.05 + 50]
        )
        labels = np.repeat([0, 1], 8)
        score = silhouette_score(pairwise_euclidean(points), labels)
        assert score > 0.95

    def test_random_labels_near_zero(self, rng):
        points = rng.standard_normal((40, 2))
        labels = rng.integers(0, 2, size=40)
        score = silhouette_score(pairwise_euclidean(points), labels)
        assert abs(score) < 0.35

    def test_single_cluster_raises(self, rng):
        d = pairwise_euclidean(rng.standard_normal((5, 2)))
        with pytest.raises(ValueError, match="at least 2"):
            silhouette_score(d, np.zeros(5, dtype=int))

    def test_all_singletons_raises(self, rng):
        d = pairwise_euclidean(rng.standard_normal((4, 2)))
        with pytest.raises(ValueError, match="singleton"):
            silhouette_score(d, np.arange(4))


class TestSeparability:
    def test_block_structure_large(self, rng):
        points = np.vstack(
            [rng.standard_normal((6, 2)), rng.standard_normal((6, 2)) + 100]
        )
        groups = np.repeat([0, 1], 6)
        assert group_separability(pairwise_euclidean(points), groups) > 10

    def test_no_structure_near_one(self, rng):
        d = pairwise_euclidean(rng.standard_normal((20, 5)))
        groups = np.tile([0, 1], 10)
        assert group_separability(d, groups) == pytest.approx(1.0, abs=0.3)

    def test_single_group_nan(self, rng):
        d = pairwise_euclidean(rng.standard_normal((4, 2)))
        assert np.isnan(group_separability(d, np.zeros(4, dtype=int)))

    def test_all_singletons_inf(self, rng):
        d = pairwise_euclidean(rng.standard_normal((4, 2)))
        assert group_separability(d, np.arange(4)) == float("inf")
