"""Checkpoint/resume: codec robustness and resume-vs-uninterrupted
bit-identity.

The codec contract: ``save_checkpoint`` writes one atomic file
(magic + version + JSON header + raw array blobs) and ``load_checkpoint``
either returns exactly what was saved or raises a :class:`CheckpointError`
that names the file and says what was expected versus found.  No silent
partial reads, no version coercion.

The engine contract: a run checkpointed at round ``t`` and resumed by a
*fresh* engine (fresh env, fresh strategy seeded from scratch) reproduces
the uninterrupted run bit-for-bit — server vector, accuracies, traffic
counters, every log, every history field except wall-clock.
"""

from __future__ import annotations

import json
import struct

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.algorithms.base import GlobalModelRounds
from repro.algorithms.registry import make_algorithm
from repro.data.federation import build_federation
from repro.fl.config import TrainConfig
from repro.fl.defense import (
    CHECKPOINT_MAGIC,
    CHECKPOINT_VERSION,
    CheckpointConfig,
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)
from repro.fl.history import RunHistory
from repro.fl.rounds import AsyncConfig, RoundEngine, RoundStrategy, ScenarioConfig
from repro.fl.simulation import FederatedEnv


@pytest.fixture(scope="module")
def federation():
    return build_federation(
        "cifar10", n_clients=8, n_samples=800, seed=5, partition="label_cluster"
    )


@pytest.fixture(scope="module")
def env_factory(federation):
    def make(executor="serial", local_epochs=1, seed=2):
        return FederatedEnv(
            federation,
            model_name="mlp",
            model_kwargs={"hidden": (96,)},
            train_cfg=TrainConfig(
                local_epochs=local_epochs, batch_size=32, lr=0.05, momentum=0.9
            ),
            seed=seed,
            executor=executor,
        )

    return make


def _valid_file(path):
    header = {"seed": 2, "note": "codec probe", "loss": float("nan")}
    arrays = {
        "vector": np.arange(6, dtype=np.float64),
        "labels": np.array([0, 1, 1], dtype=np.int64),
    }
    save_checkpoint(path, header, arrays)
    return path


# ----------------------------------------------------------------------
# Codec: loud failures (satellite c)
# ----------------------------------------------------------------------
class TestCodecErrors:
    def test_round_trip_smoke(self, tmp_path):
        path = _valid_file(tmp_path / "ok.bin")
        header, arrays = load_checkpoint(path)
        assert header["seed"] == 2
        assert np.isnan(header["loss"])  # NaN survives the JSON header
        np.testing.assert_array_equal(arrays["vector"], np.arange(6.0))
        assert arrays["labels"].dtype == np.int64

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            load_checkpoint(tmp_path / "never_written.bin")

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"NOTACKPT" + b"\x00" * 64)
        with pytest.raises(CheckpointError, match="not a repro checkpoint"):
            load_checkpoint(path)

    def test_version_mismatch_names_both_versions(self, tmp_path):
        path = _valid_file(tmp_path / "ok.bin")
        raw = bytearray(path.read_bytes())
        # Overwrite the version field (first 4 bytes after the magic).
        struct.pack_into("<I", raw, len(CHECKPOINT_MAGIC), 99)
        bad = tmp_path / "future.bin"
        bad.write_bytes(bytes(raw))
        with pytest.raises(
            CheckpointError,
            match=(
                "file has version 99, this build reads version "
                f"{CHECKPOINT_VERSION}"
            ),
        ):
            load_checkpoint(bad)

    def test_truncated_prelude(self, tmp_path):
        path = tmp_path / "stub.bin"
        path.write_bytes(CHECKPOINT_MAGIC[:4])
        with pytest.raises(CheckpointError, match="truncated"):
            load_checkpoint(path)

    def test_truncated_header(self, tmp_path):
        path = _valid_file(tmp_path / "ok.bin")
        raw = path.read_bytes()
        cut = tmp_path / "cut_header.bin"
        # Keep magic + version/length prelude plus half the JSON header.
        cut.write_bytes(raw[: len(CHECKPOINT_MAGIC) + 12 + 10])
        with pytest.raises(CheckpointError, match="truncated"):
            load_checkpoint(cut)

    def test_truncated_blobs(self, tmp_path):
        path = _valid_file(tmp_path / "ok.bin")
        raw = path.read_bytes()
        cut = tmp_path / "cut_blob.bin"
        cut.write_bytes(raw[:-8])  # drop the tail of the last array
        with pytest.raises(CheckpointError, match="truncated"):
            load_checkpoint(cut)

    def test_corrupt_header_json(self, tmp_path):
        path = _valid_file(tmp_path / "ok.bin")
        raw = bytearray(path.read_bytes())
        start = len(CHECKPOINT_MAGIC) + 12
        raw[start] = ord("?")  # JSON no longer parses
        bad = tmp_path / "garbled.bin"
        bad.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="header"):
            load_checkpoint(bad)

    def test_format_tag_mismatch(self, tmp_path):
        path = tmp_path / "alien.bin"
        head = {"format": "someone.elses.v9", "header": {}, "arrays": []}
        blob = json.dumps(head).encode()
        path.write_bytes(
            CHECKPOINT_MAGIC
            + struct.pack("<IQ", CHECKPOINT_VERSION, len(blob))
            + blob
        )
        with pytest.raises(CheckpointError, match="format"):
            load_checkpoint(path)

    def test_save_is_atomic(self, tmp_path):
        # A successful save leaves no temp droppings next to the file.
        path = _valid_file(tmp_path / "ok.bin")
        assert [p.name for p in tmp_path.iterdir()] == [path.name]


# ----------------------------------------------------------------------
# Codec: property-based round trips (satellite c)
# ----------------------------------------------------------------------
_DTYPES = st.sampled_from([np.float64, np.float32, np.int64])
_ARRAY = _DTYPES.flatmap(
    lambda dt: hnp.arrays(
        dtype=dt,
        shape=hnp.array_shapes(min_dims=1, max_dims=2, max_side=8),
        elements=(
            hnp.from_dtype(np.dtype(dt), allow_nan=True)
            if np.issubdtype(dt, np.floating)
            else hnp.from_dtype(np.dtype(dt))
        ),
    )
)
_SCALAR = st.one_of(
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False),
    st.text(max_size=20),
    st.booleans(),
    st.none(),
)


class TestCodecRoundTrip:
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        header=st.dictionaries(
            st.text(min_size=1, max_size=12), _SCALAR, max_size=5
        ),
        arrays=st.dictionaries(
            st.text(
                alphabet=st.characters(
                    whitelist_categories=("Ll", "Nd"), whitelist_characters="_/"
                ),
                min_size=1,
                max_size=16,
            ),
            _ARRAY,
            max_size=4,
        ),
    )
    def test_round_trip_is_exact(self, tmp_path, header, arrays):
        path = tmp_path / "prop.bin"
        save_checkpoint(path, header, arrays)
        got_header, got_arrays = load_checkpoint(path)
        assert got_header == header
        assert set(got_arrays) == set(arrays)
        for name, arr in arrays.items():
            got = got_arrays[name]
            assert got.dtype == arr.dtype
            assert got.shape == arr.shape
            np.testing.assert_array_equal(got, arr)


# ----------------------------------------------------------------------
# Engine resume bit-identity
# ----------------------------------------------------------------------
def _history_rows(history: RunHistory):
    def canon(v):
        # NaN breaks dict equality; map it to a comparable sentinel.
        if isinstance(v, float) and np.isnan(v):
            return "nan"
        return v

    rows = []
    for r in history.records:
        d = {
            f.name: canon(getattr(r, f.name))
            for f in r.__dataclass_fields__.values()
            if f.name != "wall_seconds"
        }
        rows.append(d)
    return rows


def _assert_engines_match(a: RoundEngine, b: RoundEngine):
    assert a.drop_log == b.drop_log
    assert a.straggler_log == b.straggler_log
    assert a.stale_log == b.stale_log
    assert a.departure_log == b.departure_log
    assert a.quarantine_log == b.quarantine_log
    assert a.participation_log == b.participation_log
    assert a.env.tracker.uploads == b.env.tracker.uploads
    assert a.env.tracker.downloads == b.env.tracker.downloads


class TestResumeBitIdentity:
    def _run(
        self,
        env,
        scenario,
        n_rounds,
        seed_history="fedavg",
    ):
        strategy = GlobalModelRounds(env.layout.pack(env.init_state()))
        engine = RoundEngine(env, scenario)
        history = RunHistory(seed_history, "synthetic", env.seed)
        mean_acc, per_client = engine.run(strategy, n_rounds, history)
        return strategy, engine, history, mean_acc, per_client

    def _compare(self, ref, resumed):
        s1, e1, h1, acc1, pc1 = ref
        s2, e2, h2, acc2, pc2 = resumed
        np.testing.assert_array_equal(s2.vector, s1.vector)
        assert acc2 == acc1
        np.testing.assert_array_equal(pc2, pc1)
        assert _history_rows(h2) == _history_rows(h1)
        _assert_engines_match(e2, e1)

    def test_fedavg_sync_resume(self, env_factory, tmp_path):
        def scenario(d, resume):
            return ScenarioConfig(
                failure_rate=0.2,
                checkpoint=CheckpointConfig(directory=d, resume=resume),
            )

        env = env_factory()
        ref = self._run(env, scenario(tmp_path / "ref", False), 4)
        env.close()

        env = env_factory()
        self._run(env, scenario(tmp_path / "cut", False), 2)
        env.close()
        env = env_factory()
        resumed = self._run(env, scenario(tmp_path / "cut", True), 4)
        env.close()
        self._compare(ref, resumed)

    def test_resume_skips_completed_rounds(self, env_factory, tmp_path):
        ckpt = CheckpointConfig(directory=tmp_path, resume=False)
        env = env_factory()
        self._run(env, ScenarioConfig(checkpoint=ckpt), 3)
        done_down = env.tracker.total_downloaded
        done_up = env.tracker.total_uploaded
        env.close()
        env = env_factory()
        strategy = GlobalModelRounds(env.layout.pack(env.init_state()))
        engine = RoundEngine(
            env,
            ScenarioConfig(
                checkpoint=CheckpointConfig(directory=tmp_path, resume=True)
            ),
        )
        history = RunHistory("fedavg", "synthetic", env.seed)
        engine.run(strategy, 3, history)
        env.close()
        # Nothing re-trained: the three checkpointed rounds were restored
        # wholesale — the tracker holds exactly the checkpointed totals
        # and no new dispatch added traffic on top.
        assert [r.round_index for r in history.records] == [1, 2, 3]
        assert env.tracker.total_downloaded == done_down
        assert env.tracker.total_uploaded == done_up

    def test_checkpoint_every_still_covers_the_last_round(
        self, env_factory, tmp_path
    ):
        ckpt = CheckpointConfig(directory=tmp_path, every=2, resume=False)
        env = env_factory()
        self._run(env, ScenarioConfig(checkpoint=ckpt), 3)
        env.close()
        header, _ = load_checkpoint(ckpt.path)
        assert header["next_round"] == 4  # round 3 (odd) was still written

    def test_fedclust_resume(self, env_factory, tmp_path):
        def run(d, resume, n_rounds):
            env = env_factory()
            try:
                return make_algorithm(
                    "fedclust", warmup_steps=10, warmup_lr=0.01
                ).run(
                    env,
                    n_rounds=n_rounds,
                    scenario=ScenarioConfig(
                        checkpoint=CheckpointConfig(directory=d, resume=resume)
                    ),
                )
            finally:
                env.close()

        ref = run(tmp_path / "ref", False, 4)
        run(tmp_path / "cut", False, 2)
        resumed = run(tmp_path / "cut", True, 4)
        assert resumed.final_accuracy == ref.final_accuracy
        np.testing.assert_array_equal(
            resumed.per_client_accuracy, ref.per_client_accuracy
        )
        np.testing.assert_array_equal(
            resumed.cluster_labels, ref.cluster_labels
        )
        assert _history_rows(resumed.history) == _history_rows(ref.history)

    def test_async_resume(self, env_factory, tmp_path):
        def scenario(d, resume):
            return ScenarioConfig(
                staleness_decay=0.9,
                async_config=AsyncConfig(buffer_size=3, duration_range=(1, 3)),
                checkpoint=CheckpointConfig(directory=d, resume=resume),
            )

        env = env_factory()
        ref = self._run(env, scenario(tmp_path / "ref", False), 6)
        env.close()

        env = env_factory()
        self._run(env, scenario(tmp_path / "cut", False), 3)
        env.close()
        env = env_factory()
        resumed = self._run(env, scenario(tmp_path / "cut", True), 6)
        env.close()
        # The in-flight buffer crossed the checkpoint boundary intact.
        self._compare(ref, resumed)


# ----------------------------------------------------------------------
# Resume guards
# ----------------------------------------------------------------------
class TestResumeGuards:
    def _checkpointed(self, env_factory, tmp_path):
        env = env_factory()
        strategy = GlobalModelRounds(env.layout.pack(env.init_state()))
        engine = RoundEngine(
            env,
            ScenarioConfig(
                checkpoint=CheckpointConfig(directory=tmp_path, resume=False)
            ),
        )
        engine.run(strategy, 1, RunHistory("fedavg", "synthetic", env.seed))
        env.close()
        return CheckpointConfig(directory=tmp_path, resume=True)

    def test_seed_mismatch_names_both_values(self, env_factory, tmp_path):
        ckpt = self._checkpointed(env_factory, tmp_path)
        env = env_factory(seed=3)
        strategy = GlobalModelRounds(env.layout.pack(env.init_state()))
        engine = RoundEngine(env, ScenarioConfig(checkpoint=ckpt))
        with pytest.raises(
            CheckpointError, match=r"seed mismatch.*expects 3.*holds 2"
        ):
            engine.run(strategy, 2, RunHistory("fedavg", "synthetic", 3))
        env.close()

    def test_strategy_mismatch(self, env_factory, tmp_path):
        ckpt = self._checkpointed(env_factory, tmp_path)
        env = env_factory()
        try:
            with pytest.raises(CheckpointError, match="strategy mismatch"):
                make_algorithm("ifca", n_clusters=2).run(
                    env,
                    n_rounds=2,
                    scenario=ScenarioConfig(checkpoint=ckpt),
                )
        finally:
            env.close()

    def test_resume_without_file_starts_fresh(self, env_factory, tmp_path):
        # resume=True against an empty directory is a cold start, not an
        # error — the first checkpoint appears after round 1.
        env = env_factory()
        strategy = GlobalModelRounds(env.layout.pack(env.init_state()))
        ckpt = CheckpointConfig(directory=tmp_path / "fresh", resume=True)
        engine = RoundEngine(env, ScenarioConfig(checkpoint=ckpt))
        history = RunHistory("fedavg", "synthetic", env.seed)
        engine.run(strategy, 1, history)
        env.close()
        assert ckpt.path.exists()
        assert history.n_rounds == 1

    def test_strategy_without_hooks_fails_loudly(self, env_factory, tmp_path):
        class Opaque(RoundStrategy):
            name = "opaque"

            def broadcast_for(self, engine, round_index, participants):
                return []

            def aggregate(self, engine, round_index, survivors):
                return float("nan")

            def evaluate(self, engine, round_index):
                return 0.0, np.zeros(8)

        env = env_factory()
        engine = RoundEngine(
            env,
            ScenarioConfig(
                checkpoint=CheckpointConfig(directory=tmp_path, resume=False)
            ),
        )
        with pytest.raises(NotImplementedError, match="opaque"):
            engine.run(Opaque(), 1, RunHistory("opaque", "synthetic", env.seed))
        env.close()
