"""Baseline algorithms: construction, mechanics, and short end-to-end runs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.base import fedavg_round, states_for_clients
from repro.algorithms.cfl import CFL
from repro.algorithms.fedavg import FedAvg
from repro.algorithms.fedprox import FedProx
from repro.algorithms.ifca import IFCA
from repro.algorithms.pacfl import PACFL
from repro.algorithms.registry import available_algorithms, make_algorithm
from repro.cluster.metrics import adjusted_rand_index


class TestRegistry:
    def test_table1_order(self):
        assert available_algorithms() == [
            "fedavg",
            "fedprox",
            "cfl",
            "ifca",
            "pacfl",
            "fedclust",
        ]

    def test_make_each(self):
        for name in available_algorithms():
            algo = make_algorithm(name)
            assert algo.name == name

    def test_fedclust_kwargs_build_config(self):
        algo = make_algorithm("fedclust", warmup_steps=5)
        assert algo.config.warmup_steps == 5

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            make_algorithm("fedsgd")


class TestSharedHelpers:
    def test_fedavg_round_aggregates_and_accounts(self, small_env):
        state = small_env.init_state()
        before_up = small_env.tracker.total_uploaded
        new_state, loss, updates = fedavg_round(small_env, state, [0, 1, 2], 1)
        assert set(new_state.keys()) == set(state.keys())
        assert np.isfinite(loss)
        assert len(updates) == 3
        assert small_env.tracker.total_uploaded - before_up == 3 * small_env.n_params

    def test_fedavg_round_empty_members_raises(self, small_env):
        with pytest.raises(ValueError, match="at least one"):
            fedavg_round(small_env, small_env.init_state(), [], 1)

    def test_states_for_clients(self, rng):
        states = [{"w": np.zeros(1)}, {"w": np.ones(1)}]
        labels = np.array([1, 0, 1])
        expanded = states_for_clients(states, labels)
        assert expanded[0] is states[1]
        assert expanded[1] is states[0]

    def test_states_for_clients_bad_labels(self):
        with pytest.raises(ValueError, match="outside"):
            states_for_clients([{"w": np.zeros(1)}], np.array([0, 1]))


class TestConstructionValidation:
    def test_fedavg_fraction(self):
        with pytest.raises(ValueError):
            FedAvg(client_fraction=0.0)
        with pytest.raises(ValueError):
            FedAvg(client_fraction=1.5)

    def test_fedprox_mu(self):
        with pytest.raises(ValueError):
            FedProx(mu=-1.0)
        assert FedProx(mu=0.3).prox_mu == 0.3

    def test_cfl_params(self):
        with pytest.raises(ValueError):
            CFL(eps1=0.0)
        with pytest.raises(ValueError):
            CFL(norm_mode="weird")

    def test_ifca_params(self):
        with pytest.raises(ValueError):
            IFCA(n_clusters=0)

    def test_pacfl_params(self):
        with pytest.raises(ValueError):
            PACFL(cut="k")  # needs n_clusters
        with pytest.raises(ValueError):
            PACFL(cut="distance")  # needs threshold


class TestCFLMechanics:
    def test_bipartition_splits_opposed_updates(self, rng):
        # Two groups of update vectors pointing in opposite directions.
        up = np.vstack([rng.standard_normal((4, 6)) + 5, rng.standard_normal((4, 6)) - 5])
        left, right = CFL._bipartition(up)
        groups = np.repeat([0, 1], 4)
        labels = np.zeros(8, dtype=int)
        labels[right] = 1
        assert adjusted_rand_index(groups, labels) == 1.0

    def test_split_criterion_gates(self):
        algo = CFL(eps1=0.4, eps2=0.1, warmup_rounds=2, min_cluster_size=2)
        from repro.algorithms.cfl import _Cluster

        cluster = _Cluster(state={}, members=np.arange(6), scale0=1.0)
        # Before warm-up: never split.
        assert not algo._should_split(cluster, 0.01, 1.0, round_index=1)
        # After warm-up with incongruent updates: split.
        assert algo._should_split(cluster, 0.01, 1.0, round_index=3)
        # Congruent updates (mean close to max): no split.
        assert not algo._should_split(cluster, 0.9, 1.0, round_index=3)
        # Tiny cluster: no split.
        cluster.members = np.arange(3)
        assert not algo._should_split(cluster, 0.01, 1.0, round_index=3)


@pytest.mark.slow
class TestShortRuns:
    """Every algorithm must run end-to-end and produce sane artefacts."""

    @pytest.mark.parametrize(
        "name,kwargs",
        [
            ("fedavg", {}),
            ("fedprox", {"mu": 0.1}),
            ("cfl", {"warmup_rounds": 1}),
            ("ifca", {"n_clusters": 2}),
            ("pacfl", {}),
            ("fedclust", {"warmup_steps": 10, "warmup_lr": 0.01}),
        ],
    )
    def test_run(self, small_env, name, kwargs, planted_federation):
        algo = make_algorithm(name, **kwargs)
        result = algo.run(small_env, n_rounds=3, eval_every=3)
        m = planted_federation.n_clients
        assert result.history.n_rounds == 3
        assert 0.0 <= result.final_accuracy <= 1.0
        assert result.per_client_accuracy.shape == (m,)
        assert result.cluster_labels is not None
        assert result.cluster_labels.shape == (m,)
        assert result.comm["total"]["bytes"] > 0
        # Better than random guessing over 10 classes even after 3 rounds
        # (each client's local test covers at most 5 classes).
        assert result.final_accuracy > 0.15

    def test_fedavg_client_fraction_runs(self, small_env):
        result = FedAvg(client_fraction=0.5).run(small_env, n_rounds=2, eval_every=2)
        assert result.history.records[0].n_participants == 4

    def test_ifca_download_is_k_times(self, small_env):
        k = 3
        algo = IFCA(n_clusters=k)
        algo.run(small_env, n_rounds=2, eval_every=2)
        m = small_env.federation.n_clients
        expected_down = 2 * k * small_env.n_params * m
        assert small_env.tracker.total_downloaded == expected_down

    def test_pacfl_uploads_bases_in_clustering_phase(self, small_env):
        PACFL(n_components=2).run(small_env, n_rounds=2, eval_every=2)
        d = int(np.prod(small_env.federation.input_shape))
        m = small_env.federation.n_clients
        assert small_env.tracker.uploaded_in("clustering") == 2 * d * m

    def test_pacfl_recovers_planted_groups(self, small_env, planted_federation):
        result = PACFL(n_components=3).run(small_env, n_rounds=2, eval_every=2)
        ari = adjusted_rand_index(planted_federation.true_groups, result.cluster_labels)
        # Data subspaces carry group signal, but the archetype structure
        # (sibling classes straddle the two groups) makes PACFL's
        # raw-pixel subspaces only partially separable — unlike FedClust's
        # weight signatures, which recover the groups exactly (see
        # test_core_fedclust).  Require clearly-better-than-chance.
        assert ari > 0.3
