"""Benchmark A1 — HC linkage ablation.

The paper does not pin down the linkage; this ablation shows cluster
recovery per linkage on a planted federation.  Average/complete linkage
must recover the planted groups perfectly on this well-separated case.
"""

from __future__ import annotations

import pytest

from repro.experiments.ablations import run_linkage_ablation

EXPERIMENT_ID = "A1"


def _a1(experiment_cache, scale):
    if EXPERIMENT_ID not in experiment_cache:
        experiment_cache[EXPERIMENT_ID] = run_linkage_ablation(scale=scale)
    return experiment_cache[EXPERIMENT_ID]


@pytest.mark.benchmark(group="ablation", min_rounds=1, max_time=1.0, warmup=False)
def test_bench_ablation_linkage(benchmark, experiment_cache, scale, capsys):
    result = benchmark.pedantic(
        lambda: _a1(experiment_cache, scale), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(result.format())

    assert result.ari_of("average") == pytest.approx(1.0)
    assert result.ari_of("complete") == pytest.approx(1.0)
    assert result.ari_of("ward") == pytest.approx(1.0)
