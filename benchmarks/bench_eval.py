"""Grouped-vs-per-client evaluation benchmark (``BENCH_eval.json``).

Times the Table-I metric at clustered-FL scale — 64 clients served by 4
cluster models — three ways:

* **per-client loop** (:func:`repro.fl.evaluation.mean_local_accuracy`):
  the reference protocol, one state load + one serial batch loop per
  client;
* **grouped (dict states)** (:func:`repro.fl.eval_flat.evaluate_grouped`):
  each cluster model loaded once, members' splits fused into shared
  batches, per-client stats by segment reduction;
* **grouped (packed rows)** (:func:`repro.fl.eval_flat.evaluate_packed`):
  the same, consuming the cluster models as rows of a packed
  ``(k, n_params)`` matrix — the form clustered algorithms hold anyway.

Writes ``BENCH_eval.json`` at the repo root (grouped-vs-loop timings,
speedups, and the accuracy bit-identity flag) so the perf trajectory of
the eval path is recorded per PR, alongside ``BENCH_kernels.json`` for
aggregation.  Run via ``python benchmarks/bench_eval.py`` or
``scripts/bench.sh``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.data.synthetic import make_dataset
from repro.fl.config import TrainConfig
from repro.fl.eval_flat import evaluate_grouped, evaluate_packed
from repro.fl.evaluation import mean_local_accuracy
from repro.fl.simulation import FederatedEnv
from repro.nn.state_flat import pack_states


def _time_ms(fn, reps: int, warmup: int = 1) -> float:
    """Median wall time of ``fn()`` over ``reps`` runs, in milliseconds."""
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - t0) * 1e3)
    return float(np.median(samples))


def _federation_env(
    n_clients: int,
    samples_per_client: int,
    seed: int = 0,
    model_name: str = "mlp",
    model_kwargs: dict | None = None,
) -> FederatedEnv:
    """A federation at eval-benchmark scale.

    Built directly from one synthetic pool (equal slices) — partition
    shape is irrelevant to evaluation cost, and equal test splits make
    the work per client deterministic and comparable across runs.
    """
    from repro.data.federation import ClientData, Federation

    pool = make_dataset("cifar10", n_clients * samples_per_client, seed)
    clients = []
    for cid in range(n_clients):
        lo = cid * samples_per_client
        local = pool.subset(np.arange(lo, lo + samples_per_client))
        n_test = max(1, samples_per_client // 5)
        train = local.subset(np.arange(n_test, samples_per_client))
        test = local.subset(np.arange(n_test))
        clients.append(ClientData(cid, train, test))
    federation = Federation(
        clients=clients,
        n_classes=pool.n_classes,
        input_shape=pool.input_shape,
        dataset_name=pool.name,
    )
    return FederatedEnv(
        federation,
        model_name=model_name,
        model_kwargs=model_kwargs,
        train_cfg=TrainConfig(eval_batch_size=512),
        seed=seed,
    )


def run_grouped_vs_loop(
    n_clients: int = 64,
    n_clusters: int = 4,
    samples_per_client: int = 40,
    model_name: str = "mlp",
    model_kwargs: dict | None = None,
    out_path: str | Path | None = None,
) -> dict:
    """Time the per-client loop vs the grouped/fused eval paths.

    Cluster models are ``n_clusters`` perturbations of the environment's
    init state; clients are assigned round-robin, so each model serves
    ``n_clients / n_clusters`` clients — the IFCA/FedClust Table-I shape.

    The headline model is a wide MLP (``hidden=(512,)``, ~1.6M params):
    its eval is GEMM-bound, which is exactly where the per-client
    protocol wastes the most — tiny per-client batches keep BLAS far
    below peak and every client pays a full 1.6M-param state load.  The
    standalone entry point also records a conv (LeNet-5) secondary: this
    library's im2col convolution is compute-bound at any batch size (and
    cache-unfriendly at very large ones), so fusion there mostly saves
    the duplicate loads — the honest counterpoint, kept in the record.
    """
    if model_kwargs is None and model_name == "mlp":
        model_kwargs = {"hidden": (512,)}
    env = _federation_env(
        n_clients, samples_per_client, model_name=model_name, model_kwargs=model_kwargs
    )
    testsets = [c.test for c in env.federation.clients]
    batch = env.train_cfg.eval_batch_size
    rng = np.random.default_rng(0)

    cluster_states = []
    for _ in range(n_clusters):
        cluster_states.append(
            {
                k: v + rng.standard_normal(v.shape).astype(v.dtype) * 0.05
                for k, v in env.init_state().items()
            }
        )
    labels = np.arange(n_clients, dtype=np.int64) % n_clusters
    states_per_client = [cluster_states[g] for g in labels]
    matrix, _ = pack_states(cluster_states, env.layout)

    loop_ms = _time_ms(
        lambda: mean_local_accuracy(
            env.scratch_model, states_per_client, testsets, batch_size=batch
        ),
        reps=5,
    )
    grouped_ms = _time_ms(
        lambda: evaluate_grouped(
            env.scratch_model, cluster_states, labels, testsets, batch_size=batch
        ),
        reps=9,
    )
    packed_ms = _time_ms(
        lambda: evaluate_packed(env, matrix, labels, batch_size=batch), reps=9
    )

    _, loop_acc = mean_local_accuracy(
        env.scratch_model, states_per_client, testsets, batch_size=batch
    )
    _, grouped_acc = evaluate_grouped(
        env.scratch_model, cluster_states, labels, testsets, batch_size=batch
    )
    _, packed_acc = evaluate_packed(env, matrix, labels, batch_size=batch)

    n_test_total = int(sum(len(t) for t in testsets))
    record = {
        "benchmark": (
            "mean local accuracy: grouped/fused (k loads, shared batches, "
            "segment reduction) vs per-client loop"
        ),
        "model": f"{model_name}({model_kwargs})" if model_kwargs else model_name,
        "n_clients": n_clients,
        "n_cluster_models": n_clusters,
        "n_params": env.n_params,
        "test_samples_total": n_test_total,
        "eval_batch_size": batch,
        "per_client_loop_ms": round(loop_ms, 3),
        "grouped_ms": round(grouped_ms, 3),
        "packed_ms": round(packed_ms, 3),
        "speedup_grouped": round(loop_ms / grouped_ms, 2),
        "speedup_packed": round(loop_ms / packed_ms, 2),
        # Per-client accuracies: fused vs serial reference, bit for bit.
        "bit_identical": bool(
            np.array_equal(loop_acc, grouped_acc)
            and np.array_equal(loop_acc, packed_acc)
        ),
    }
    if out_path is not None:
        Path(out_path).write_text(json.dumps(record, indent=2) + "\n")
    return record


# ----------------------------------------------------------------------
# pytest-benchmark hooks (optional, mirrors bench_kernels.py)
# ----------------------------------------------------------------------
try:  # pragma: no cover - pytest only needed for the suite entry point
    import pytest
except ImportError:  # pragma: no cover
    pytest = None

if pytest is not None:

    @pytest.fixture(scope="module")
    def eval_setup():
        env = _federation_env(32, 60)
        testsets = [c.test for c in env.federation.clients]
        rng = np.random.default_rng(0)
        states = [
            {
                k: v + rng.standard_normal(v.shape).astype(v.dtype) * 0.05
                for k, v in env.init_state().items()
            }
            for _ in range(4)
        ]
        labels = np.arange(32, dtype=np.int64) % 4
        return env, states, labels, testsets

    @pytest.mark.benchmark(group="evaluation")
    def test_bench_eval_per_client_loop(benchmark, eval_setup):
        env, states, labels, testsets = eval_setup
        per_client = [states[g] for g in labels]
        benchmark(
            mean_local_accuracy, env.scratch_model, per_client, testsets, 512
        )

    @pytest.mark.benchmark(group="evaluation")
    def test_bench_eval_grouped(benchmark, eval_setup):
        env, states, labels, testsets = eval_setup
        benchmark(
            evaluate_grouped, env.scratch_model, states, labels, testsets, 512
        )

    @pytest.mark.benchmark(group="evaluation")
    def test_bench_eval_packed(benchmark, eval_setup):
        env, states, labels, testsets = eval_setup
        matrix, _ = pack_states(states, env.layout)
        benchmark(evaluate_packed, env, matrix, labels, 512)


if __name__ == "__main__":
    import sys

    target = (
        Path(sys.argv[1])
        if len(sys.argv) > 1
        else Path(__file__).resolve().parent.parent / "BENCH_eval.json"
    )
    result = run_grouped_vs_loop()
    # Conv counterpoint at the same cohort shape: im2col convolution is
    # compute-bound per row, so fusion buys less there — recorded so the
    # trajectory shows both regimes, not just the favourable one.
    conv = run_grouped_vs_loop(model_name="lenet5", model_kwargs={})
    result["secondary_lenet5"] = {
        k: conv[k]
        for k in (
            "model",
            "per_client_loop_ms",
            "grouped_ms",
            "packed_ms",
            "speedup_grouped",
            "speedup_packed",
            "bit_identical",
        )
    }
    Path(target).write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    print(f"wrote {target}")
