"""Benchmark A3 — heterogeneity sweep (the paper's future-work axis).

FedClust vs FedAvg across Dirichlet α.  The clustered method's advantage
must be largest under severe skew (small α) and vanish near-IID (large
α), where a single global model is the right answer.
"""

from __future__ import annotations

import pytest

from repro.experiments.ablations import run_alpha_sweep

EXPERIMENT_ID = "A3"


def _a3(experiment_cache, scale):
    if EXPERIMENT_ID not in experiment_cache:
        experiment_cache[EXPERIMENT_ID] = run_alpha_sweep(scale=scale)
    return experiment_cache[EXPERIMENT_ID]


@pytest.mark.benchmark(group="ablation", min_rounds=1, max_time=1.0, warmup=False)
def test_bench_ablation_alpha(benchmark, experiment_cache, scale, capsys):
    result = benchmark.pedantic(
        lambda: _a3(experiment_cache, scale), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(result.format())

    gains = [c - a for a, c in zip(result.fedavg, result.fedclust)]
    # Severe skew (first alpha): clustering helps clearly.
    assert gains[0] > 0.02, f"no gain under severe skew: {gains}"
    # The advantage shrinks as data approaches IID.
    assert gains[0] > gains[-1], f"gain did not shrink toward IID: {gains}"
    # Near-IID FedClust must not collapse (within 10 points of FedAvg).
    assert result.fedclust[-1] > result.fedavg[-1] - 0.10
