"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's artefacts (see DESIGN.md §4)
at the scale selected by ``$REPRO_SCALE`` (quick / bench / paper; default
quick) and prints the regenerated table/figure so the run doubles as the
reproduction record.  pytest-benchmark times the regeneration.

Results are cached per (experiment, scale) within a session so a bench
that both times and asserts does not run the experiment twice.
"""

from __future__ import annotations

import pytest

from repro.experiments.presets import get_scale
from repro.utils.logging import enable_console_logging


def pytest_configure(config):
    enable_console_logging()


@pytest.fixture(scope="session")
def scale():
    """The active experiment scale."""
    return get_scale()


@pytest.fixture(scope="session")
def experiment_cache():
    """Session-wide memo: experiment id → result object."""
    return {}
