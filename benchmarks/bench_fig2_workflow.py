"""Benchmark F2 — the Fig. 2 workflow incl. real-time newcomer onboarding.

Prints the six-step trace and asserts the workflow claims: clustering is
one-shot, the upload is partial (a small fraction of the full model),
planted groups are recovered, and the newcomer lands in its ground-truth
cluster where the cluster model serves it better than the initial model.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig2 import format_fig2, run_fig2

EXPERIMENT_ID = "F2"


def _fig2(experiment_cache, scale):
    if EXPERIMENT_ID not in experiment_cache:
        experiment_cache[EXPERIMENT_ID] = run_fig2(scale=scale)
    return experiment_cache[EXPERIMENT_ID]


@pytest.mark.benchmark(group="fig2", min_rounds=1, max_time=1.0, warmup=False)
def test_bench_fig2_workflow(benchmark, experiment_cache, scale, capsys):
    result = benchmark.pedantic(
        lambda: _fig2(experiment_cache, scale), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(format_fig2(result))

    assert len(result.steps) == 6, "workflow must trace all six steps"
    # One-shot clustering with partial weights: the clustering upload is a
    # small fraction of shipping full models.
    assert result.partial_upload_fraction < 0.25
    # The planted structure is recovered.
    assert result.ari == pytest.approx(1.0), f"ARI {result.ari}"
    # The newcomer is routed to its ground-truth cluster, decisively.
    assert result.newcomer_correct
    assert result.newcomer_margin > 0
    # And the cluster model serves the newcomer better than the init model.
    assert result.newcomer_acc_with_cluster > result.newcomer_acc_with_init
