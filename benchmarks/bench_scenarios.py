"""Round-engine overhead benchmark (``BENCH_scenarios.json``).

The engine refactor replaced the hand-rolled per-algorithm round loops
(PR 3 era) with one shared server loop plus scenario middleware
(:mod:`repro.fl.rounds`).  The middleware must be free when unused:
this benchmark times a full FedAvg training run two ways —

* **baseline**: an inline replica of the pre-engine FedAvg loop over
  the surviving primitive (:func:`repro.algorithms.base.fedavg_round_flat`
  + ``evaluate_packed`` on the same cadence);
* **engine**: :class:`repro.fl.rounds.RoundEngine` driving
  :class:`repro.algorithms.base.GlobalModelRounds` under the default
  scenario —

and pins the overhead **< 2 %** (wall-clock on this box is noisy;
medians over several full runs).  Both paths produce bit-identical
final vectors (recorded as ``bit_identical``).

In practice the engine measures *faster* than the legacy loop shape:
the old loop's ``vector, loss, _ = fedavg_round_flat(...)`` binding
kept the previous round's 64 full updates (state dicts + flat rows)
alive across the next round's cohort ``np.stack``, so the ~200 MB
cohort allocation always hit first-touch page faults; the engine
rebinds its dispatch result before aggregating, the allocator reuses
the warm arena, and the stack runs ~2× faster (profiled: identical
per-op times everywhere else).  The negative ``overhead_pct`` is that
buffer-lifetime win, not a measurement artefact — it is stable across
fresh processes.

A second record exercises the scenario path that did not exist before
the engine: C = 0.2 partial participation, with the engine's sampled
run checked bit-for-bit against an inline ``uniform_sample`` +
``fedavg_round_flat`` loop (the sampling semantics FedAvg's historical
``_participants`` used).  A third runs the v2 middleware stack (stale
folding × compute budgets × an availability trace) twice from fresh
state and records that the composition is deterministic bit-for-bit.

A fourth record covers the async (FedBuff-style) event streams: the
``buffer_size = m, duration = 1`` special case is gated bit-identical
to the synchronous engine, a genuinely-async config (K = 16, bounded
concurrency, durations U[1, 3]) is gated deterministic across fresh
runs, and its **updates-absorbed/sec** throughput is recorded.

A fifth record covers the robust-aggregation choke point (PR 7's
server hardening): ``robust_agg = "none"`` on the non-default C = 0.2
engine path is gated bit-identical to the inline sampled loop (the
robust dispatch with mode "none" IS the classic weighted average, down
to the last bit), and the wall-clock overhead of ``trimmed_mean`` over
the plain average is recorded **and gated** below
:data:`TRIMMED_OVERHEAD_GATE_PCT` — the blocked contiguous-lane
trimming kernel (see ``repro.fl.defense._trimmed_middle_mean``) cut
the original strided-sort overhead from ~72% to ~29%, and the ceiling
pins the improvement against regressions back to the strided path.

Run via ``python benchmarks/bench_scenarios.py`` or ``scripts/bench.sh``.
``--check`` is the CI mode: the bit-identity gates plus the overhead
gate from single best-of-N timings — no medians, no JSON written, exit
status is the verdict.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

try:  # package import (pytest) vs script import (scripts/bench.sh)
    from benchmarks.bench_eval import _federation_env
except ImportError:  # pragma: no cover - script entry point
    from bench_eval import _federation_env

from repro.algorithms.base import GlobalModelRounds, fedavg_round_flat
from repro.fl.config import TrainConfig
from repro.fl.history import RunHistory
from repro.fl.rounds import AsyncConfig, RoundEngine, ScenarioConfig
from repro.fl.sampling import uniform_sample
from repro.fl.trace import AvailabilityTrace

OVERHEAD_GATE_PCT = 2.0

#: Ceiling on trimmed_mean's wall-clock overhead over the plain
#: weighted average (full training runs, same cohort).  The blocked
#: trimming kernel measures ~29% on this box; the historical strided
#: ``np.sort(axis=0)`` measured ~72%, so the ceiling catches any
#: regression to a strided or copy-heavy kernel while leaving timing
#: noise headroom.
TRIMMED_OVERHEAD_GATE_PCT = 45.0


def _median_ms(fn, reps: int, warmup: int = 1) -> float:
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - t0) * 1e3)
    return float(np.median(samples))


def _make_env(n_clients: int, samples_per_client: int, local_epochs: int):
    # mlp(128) (~395k params) keeps the per-round cohort stack at
    # ~200 MB: large enough that training dominates, small enough that
    # allocator effects do not drown the orchestration signal.
    env = _federation_env(
        n_clients, samples_per_client, model_name="mlp", model_kwargs={"hidden": (128,)}
    )
    env.train_cfg = TrainConfig(local_epochs=local_epochs, batch_size=32)
    return env


def _baseline_run(env, n_rounds: int, fraction: float = 1.0) -> np.ndarray:
    """Inline replica of the pre-engine FedAvg loop (PR 3 shape)."""
    m = env.federation.n_clients
    labels = np.zeros(m, dtype=np.int64)
    vector = env.layout.pack(env.init_state())
    for round_index in range(1, n_rounds + 1):
        if fraction >= 1.0:
            participants = np.arange(m)
        else:
            participants = uniform_sample(m, fraction, env.server_rng(round_index))
        vector, _, _ = fedavg_round_flat(env, vector, participants, round_index)
        env.evaluate_packed(vector, labels)
    return vector


def _engine_run(env, n_rounds: int, fraction: float = 1.0) -> np.ndarray:
    strategy = GlobalModelRounds(env.layout.pack(env.init_state()))
    engine = RoundEngine(env, ScenarioConfig(client_fraction=fraction))
    engine.run(strategy, n_rounds, RunHistory("bench", "synthetic", 0))
    return strategy.vector


def run_engine_overhead(
    n_clients: int = 64,
    samples_per_client: int = 40,
    local_epochs: int = 1,
    n_rounds: int = 3,
    reps: int = 5,
) -> dict:
    """Full-run timing: engine loop vs inline PR 3-style loop."""
    env = _make_env(n_clients, samples_per_client, local_epochs)
    baseline_ms = _median_ms(lambda: _baseline_run(env, n_rounds), reps=reps)
    engine_ms = _median_ms(lambda: _engine_run(env, n_rounds), reps=reps)
    overhead_pct = 100.0 * (engine_ms - baseline_ms) / baseline_ms
    identical = bool(
        np.array_equal(_baseline_run(env, n_rounds), _engine_run(env, n_rounds))
    )
    return {
        "n_clients": n_clients,
        "n_params": env.n_params,
        "local_epochs": local_epochs,
        "n_rounds": n_rounds,
        "baseline_ms": round(baseline_ms, 3),
        "engine_ms": round(engine_ms, 3),
        "overhead_pct": round(overhead_pct, 3),
        "overhead_gate_pct": OVERHEAD_GATE_PCT,
        "bit_identical": identical,
    }


def run_partial_participation(
    n_clients: int = 64,
    samples_per_client: int = 40,
    local_epochs: int = 1,
    n_rounds: int = 3,
    fraction: float = 0.2,
    reps: int = 3,
) -> dict:
    """The C = 0.2 scenario row: engine vs inline sampled loop."""
    env = _make_env(n_clients, samples_per_client, local_epochs)
    baseline_ms = _median_ms(
        lambda: _baseline_run(env, n_rounds, fraction), reps=reps
    )
    engine_ms = _median_ms(lambda: _engine_run(env, n_rounds, fraction), reps=reps)
    identical = bool(
        np.array_equal(
            _baseline_run(env, n_rounds, fraction),
            _engine_run(env, n_rounds, fraction),
        )
    )
    return {
        "client_fraction": fraction,
        "participants_per_round": int(round(fraction * n_clients)),
        "n_clients": n_clients,
        "n_rounds": n_rounds,
        "baseline_ms": round(baseline_ms, 3),
        "engine_ms": round(engine_ms, 3),
        "bit_identical": identical,
    }


def _middleware_scenario(n_clients: int) -> ScenarioConfig:
    """The composed v2 stack: stale folding × budgets × a trace."""
    return ScenarioConfig(
        client_fraction=0.5,
        straggler_rate=0.25,
        staleness_decay=0.5,
        compute_budget=(0, 4),
        trace=AvailabilityTrace({0: [2, 3], 1: [1, 3]}),
        departures={n_clients - 1: 3},
    )


def _middleware_run(env, n_rounds: int) -> tuple[np.ndarray, int]:
    strategy = GlobalModelRounds(env.layout.pack(env.init_state()))
    engine = RoundEngine(env, _middleware_scenario(env.federation.n_clients))
    engine.run(strategy, n_rounds, RunHistory("bench", "synthetic", 0))
    n_stale = sum(len(ids) for _, ids in engine.stale_log)
    return strategy.vector, n_stale


def run_middleware_v2(
    n_clients: int = 64,
    samples_per_client: int = 40,
    local_epochs: int = 1,
    n_rounds: int = 3,
    reps: int = 3,
) -> dict:
    """The v2 scenario stack: determinism + wall-clock of the composition."""
    env = _make_env(n_clients, samples_per_client, local_epochs)
    ms = _median_ms(lambda: _middleware_run(env, n_rounds), reps=reps)
    first, n_stale = _middleware_run(env, n_rounds)
    second, _ = _middleware_run(env, n_rounds)
    return {
        "scenario": (
            "C=0.5, 25% stragglers folded at decay 0.5, budgets U[0,4] "
            "steps, 2-client trace, 1 departure"
        ),
        "n_clients": n_clients,
        "n_rounds": n_rounds,
        "stale_updates_folded": n_stale,
        "run_ms": round(ms, 3),
        "deterministic": bool(np.array_equal(first, second)),
    }


def _async_scenario(n_clients: int) -> ScenarioConfig:
    """A genuinely-async config: bounded concurrency, spread durations."""
    return ScenarioConfig(
        staleness_decay=0.9,
        async_config=AsyncConfig(
            buffer_size=16,
            max_concurrency=n_clients // 2,
            duration_range=(1, 3),
        ),
    )


def _async_run(
    env, n_rounds: int, scenario: ScenarioConfig
) -> tuple[np.ndarray, RoundEngine]:
    strategy = GlobalModelRounds(env.layout.pack(env.init_state()))
    engine = RoundEngine(env, scenario)
    engine.run(strategy, n_rounds, RunHistory("bench", "synthetic", 0))
    return strategy.vector, engine


def run_async_throughput(
    n_clients: int = 64,
    samples_per_client: int = 40,
    local_epochs: int = 1,
    n_rounds: int = 6,
    reps: int = 3,
) -> dict:
    """The async engine: sync-equivalence, determinism, absorb rate."""
    env = _make_env(n_clients, samples_per_client, local_epochs)
    # Gate 1: the K = m, duration = 1 special case IS the sync engine.
    sync_case = ScenarioConfig(
        async_config=AsyncConfig(buffer_size=n_clients, duration_range=1)
    )
    special, _ = _async_run(env, 3, sync_case)
    sync_equivalent = bool(np.array_equal(special, _engine_run(env, 3)))
    # Gate 2 + throughput: a genuinely-async config, twice from fresh
    # state; absorb rate = updates folded per wall-clock second.
    scenario = _async_scenario(n_clients)
    ms = _median_ms(lambda: _async_run(env, n_rounds, scenario), reps=reps)
    first, engine = _async_run(env, n_rounds, scenario)
    second, _ = _async_run(env, n_rounds, scenario)
    return {
        "scenario": (
            f"K=16, M={n_clients // 2}, durations U[1,3], decay 0.9 "
            f"over {n_rounds} server steps"
        ),
        "n_clients": n_clients,
        "n_rounds": n_rounds,
        "aggregation_events": engine.n_aggregation_events,
        "updates_absorbed": engine.n_updates_absorbed,
        "run_ms": round(ms, 3),
        "updates_absorbed_per_sec": round(
            engine.n_updates_absorbed / (ms / 1e3), 3
        ),
        "sync_equivalent": sync_equivalent,
        "deterministic": bool(np.array_equal(first, second)),
    }


def _robust_run(env, n_rounds: int, fraction: float, robust_agg: str) -> np.ndarray:
    strategy = GlobalModelRounds(env.layout.pack(env.init_state()))
    engine = RoundEngine(
        env, ScenarioConfig(client_fraction=fraction, robust_agg=robust_agg)
    )
    engine.run(strategy, n_rounds, RunHistory("bench", "synthetic", 0))
    return strategy.vector


def run_robust_aggregation(
    n_clients: int = 64,
    samples_per_client: int = 40,
    local_epochs: int = 1,
    n_rounds: int = 3,
    fraction: float = 0.2,
    reps: int = 3,
) -> dict:
    """The robust choke point: mode "none" bit-identity + trimmed cost.

    The C = 0.2 fraction keeps the scenario off the default fast path,
    so ``robust_weighted_average(mode="none")`` really runs at the
    aggregation choke point — and must still match the inline sampled
    loop exactly.
    """
    env = _make_env(n_clients, samples_per_client, local_epochs)
    identical = bool(
        np.array_equal(
            _robust_run(env, n_rounds, fraction, "none"),
            _baseline_run(env, n_rounds, fraction),
        )
    )
    none_ms = _median_ms(
        lambda: _robust_run(env, n_rounds, 1.0, "none"), reps=reps
    )
    trimmed_ms = _median_ms(
        lambda: _robust_run(env, n_rounds, 1.0, "trimmed_mean"), reps=reps
    )
    return {
        "n_clients": n_clients,
        "n_rounds": n_rounds,
        "client_fraction_for_gate": fraction,
        "none_bit_identical": identical,
        "none_ms": round(none_ms, 3),
        "trimmed_mean_ms": round(trimmed_ms, 3),
        "trimmed_mean_overhead_pct": round(
            100.0 * (trimmed_ms - none_ms) / none_ms, 3
        ),
        "trimmed_overhead_gate_pct": TRIMMED_OVERHEAD_GATE_PCT,
    }


def run_check(n_reps: int = 3) -> int:
    """CI gate: bit-identity + the overhead gate, no timing medians.

    Each loop is timed ``n_reps`` times and the **best** (minimum) run
    is compared — on shared CI machines the minimum is the stable
    statistic, and the engine historically runs ~10% *faster* than the
    inline loop, so the <2% gate has a wide margin.  Writes no JSON;
    returns a process exit code.
    """
    env = _make_env(n_clients=64, samples_per_client=40, local_epochs=1)
    failures = []

    def best_ms(fn) -> float:
        fn()  # warm-up
        samples = []
        for _ in range(n_reps):
            t0 = time.perf_counter()
            fn()
            samples.append((time.perf_counter() - t0) * 1e3)
        return min(samples)

    if not np.array_equal(_baseline_run(env, 3), _engine_run(env, 3)):
        failures.append("default scenario: engine diverged from inline loop")
    if not np.array_equal(
        _baseline_run(env, 3, 0.2), _engine_run(env, 3, 0.2)
    ):
        failures.append("C=0.2 scenario: engine diverged from inline loop")
    first, _ = _middleware_run(env, 3)
    second, _ = _middleware_run(env, 3)
    if not np.array_equal(first, second):
        failures.append("middleware v2 composition is not deterministic")
    if not np.array_equal(
        _robust_run(env, 3, 0.2, "none"), _baseline_run(env, 3, 0.2)
    ):
        failures.append(
            "robust_agg='none' diverged from the inline sampled loop"
        )
    baseline_ms = best_ms(lambda: _baseline_run(env, 3))
    engine_ms = best_ms(lambda: _engine_run(env, 3))
    overhead_pct = 100.0 * (engine_ms - baseline_ms) / baseline_ms
    print(
        f"check: baseline {baseline_ms:.1f} ms, engine {engine_ms:.1f} ms, "
        f"overhead {overhead_pct:+.2f}% (gate < {OVERHEAD_GATE_PCT}%)"
    )
    if overhead_pct >= OVERHEAD_GATE_PCT:
        failures.append(
            f"engine overhead {overhead_pct:.2f}% exceeds the "
            f"{OVERHEAD_GATE_PCT}% gate"
        )
    # The robust-mode timing comes after the overhead gate for the same
    # buffer-lifetime reason as the async gates below: trimmed-mean's
    # cohort-sized sorted copies held across the timed loops would
    # poison the overhead measurement.
    trimmed_ms = best_ms(lambda: _robust_run(env, 3, 1.0, "trimmed_mean"))
    none_ms = best_ms(lambda: _robust_run(env, 3, 1.0, "none"))
    trimmed_pct = 100.0 * (trimmed_ms - none_ms) / none_ms
    print(
        f"check: robust none {none_ms:.1f} ms, trimmed_mean {trimmed_ms:.1f} "
        f"ms ({trimmed_pct:+.2f}%, gate < {TRIMMED_OVERHEAD_GATE_PCT}%)"
    )
    if trimmed_pct >= TRIMMED_OVERHEAD_GATE_PCT:
        failures.append(
            f"trimmed_mean overhead {trimmed_pct:.2f}% exceeds the "
            f"{TRIMMED_OVERHEAD_GATE_PCT}% ceiling"
        )
    # Async gates come after the overhead timing: an async engine's
    # retained in-flight updates are exactly the buffer-lifetime hazard
    # the headline benchmark documents, and holding them alive across
    # the timed loops would poison the overhead measurement.
    m = env.federation.n_clients
    sync_case = ScenarioConfig(
        async_config=AsyncConfig(buffer_size=m, duration_range=1)
    )
    special, _ = _async_run(env, 3, sync_case)
    if not np.array_equal(special, _engine_run(env, 3)):
        failures.append(
            "async special case (K=m, duration=1) diverged from sync engine"
        )
    async_first, async_engine = _async_run(env, 3, _async_scenario(m))
    absorbed = async_engine.n_updates_absorbed
    events = async_engine.n_aggregation_events
    async_second, _ = _async_run(env, 3, _async_scenario(m))
    if not np.array_equal(async_first, async_second):
        failures.append("async event streams are not deterministic")
    del async_engine, async_first, async_second, special
    async_ms = best_ms(lambda: _async_run(env, 3, _async_scenario(m)))
    print(
        f"check: async absorbed {absorbed} updates in {events} events, "
        f"{absorbed / (async_ms / 1e3):.1f} updates/s"
    )
    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print("check passed: bit-identical, deterministic, within the gate")
    return 1 if failures else 0


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "target",
        nargs="?",
        default=Path(__file__).resolve().parent.parent / "BENCH_scenarios.json",
        help="output JSON path (full mode only)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="CI mode: bit-identity + overhead gate only, no JSON output",
    )
    args = parser.parse_args()
    if args.check:
        raise SystemExit(run_check())
    result = {
        "benchmark": (
            "round engine vs pre-engine inline loops: orchestration overhead "
            "at 64 clients (default scenario), the C=0.2 sampled scenario, "
            "the v2 middleware stack (stale x budget x trace), the async "
            "(FedBuff-style) event streams, and the robust-aggregation "
            "choke point (mode-none bit-identity + trimmed-mean cost)"
        )
    }
    headline = run_engine_overhead()
    result["headline"] = headline
    result["partial_participation_c02"] = run_partial_participation()
    result["middleware_v2"] = run_middleware_v2()
    result["async_engine"] = run_async_throughput()
    result["robust_aggregation"] = run_robust_aggregation()
    Path(args.target).write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    print(f"wrote {args.target}")
    if not headline["bit_identical"]:
        raise SystemExit("engine run diverged from the baseline loop")
    if not result["middleware_v2"]["deterministic"]:
        raise SystemExit("middleware v2 composition is not deterministic")
    if not result["async_engine"]["sync_equivalent"]:
        raise SystemExit("async special case diverged from the sync engine")
    if not result["async_engine"]["deterministic"]:
        raise SystemExit("async event streams are not deterministic")
    if not result["robust_aggregation"]["none_bit_identical"]:
        raise SystemExit(
            "robust_agg='none' diverged from the inline sampled loop"
        )
    if headline["overhead_pct"] >= OVERHEAD_GATE_PCT:
        raise SystemExit(
            f"engine overhead {headline['overhead_pct']}% exceeds the "
            f"{OVERHEAD_GATE_PCT}% gate"
        )
    trimmed_pct = result["robust_aggregation"]["trimmed_mean_overhead_pct"]
    if trimmed_pct >= TRIMMED_OVERHEAD_GATE_PCT:
        raise SystemExit(
            f"trimmed_mean overhead {trimmed_pct}% exceeds the "
            f"{TRIMMED_OVERHEAD_GATE_PCT}% ceiling"
        )
