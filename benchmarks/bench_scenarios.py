"""Round-engine overhead benchmark (``BENCH_scenarios.json``).

The engine refactor replaced the hand-rolled per-algorithm round loops
(PR 3 era) with one shared server loop plus scenario middleware
(:mod:`repro.fl.rounds`).  The middleware must be free when unused:
this benchmark times a full FedAvg training run two ways —

* **baseline**: an inline replica of the pre-engine FedAvg loop over
  the surviving primitive (:func:`repro.algorithms.base.fedavg_round_flat`
  + ``evaluate_packed`` on the same cadence);
* **engine**: :class:`repro.fl.rounds.RoundEngine` driving
  :class:`repro.algorithms.base.GlobalModelRounds` under the default
  scenario —

and pins the overhead **< 2 %** (wall-clock on this box is noisy;
medians over several full runs).  Both paths produce bit-identical
final vectors (recorded as ``bit_identical``).

In practice the engine measures *faster* than the legacy loop shape:
the old loop's ``vector, loss, _ = fedavg_round_flat(...)`` binding
kept the previous round's 64 full updates (state dicts + flat rows)
alive across the next round's cohort ``np.stack``, so the ~200 MB
cohort allocation always hit first-touch page faults; the engine
rebinds its dispatch result before aggregating, the allocator reuses
the warm arena, and the stack runs ~2× faster (profiled: identical
per-op times everywhere else).  The negative ``overhead_pct`` is that
buffer-lifetime win, not a measurement artefact — it is stable across
fresh processes.

A second record exercises the scenario path that did not exist before
the engine: C = 0.2 partial participation, with the engine's sampled
run checked bit-for-bit against an inline ``uniform_sample`` +
``fedavg_round_flat`` loop (the sampling semantics FedAvg's historical
``_participants`` used).

Run via ``python benchmarks/bench_scenarios.py`` or ``scripts/bench.sh``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

try:  # package import (pytest) vs script import (scripts/bench.sh)
    from benchmarks.bench_eval import _federation_env
except ImportError:  # pragma: no cover - script entry point
    from bench_eval import _federation_env

from repro.algorithms.base import GlobalModelRounds, fedavg_round_flat
from repro.fl.config import TrainConfig
from repro.fl.history import RunHistory
from repro.fl.rounds import RoundEngine, ScenarioConfig
from repro.fl.sampling import uniform_sample

OVERHEAD_GATE_PCT = 2.0


def _median_ms(fn, reps: int, warmup: int = 1) -> float:
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - t0) * 1e3)
    return float(np.median(samples))


def _make_env(n_clients: int, samples_per_client: int, local_epochs: int):
    # mlp(128) (~395k params) keeps the per-round cohort stack at
    # ~200 MB: large enough that training dominates, small enough that
    # allocator effects do not drown the orchestration signal.
    env = _federation_env(
        n_clients, samples_per_client, model_name="mlp", model_kwargs={"hidden": (128,)}
    )
    env.train_cfg = TrainConfig(local_epochs=local_epochs, batch_size=32)
    return env


def _baseline_run(env, n_rounds: int, fraction: float = 1.0) -> np.ndarray:
    """Inline replica of the pre-engine FedAvg loop (PR 3 shape)."""
    m = env.federation.n_clients
    labels = np.zeros(m, dtype=np.int64)
    vector = env.layout.pack(env.init_state())
    for round_index in range(1, n_rounds + 1):
        if fraction >= 1.0:
            participants = np.arange(m)
        else:
            participants = uniform_sample(m, fraction, env.server_rng(round_index))
        vector, _, _ = fedavg_round_flat(env, vector, participants, round_index)
        env.evaluate_packed(vector, labels)
    return vector


def _engine_run(env, n_rounds: int, fraction: float = 1.0) -> np.ndarray:
    strategy = GlobalModelRounds(env.layout.pack(env.init_state()))
    engine = RoundEngine(env, ScenarioConfig(client_fraction=fraction))
    engine.run(strategy, n_rounds, RunHistory("bench", "synthetic", 0))
    return strategy.vector


def run_engine_overhead(
    n_clients: int = 64,
    samples_per_client: int = 40,
    local_epochs: int = 1,
    n_rounds: int = 3,
    reps: int = 5,
) -> dict:
    """Full-run timing: engine loop vs inline PR 3-style loop."""
    env = _make_env(n_clients, samples_per_client, local_epochs)
    baseline_ms = _median_ms(lambda: _baseline_run(env, n_rounds), reps=reps)
    engine_ms = _median_ms(lambda: _engine_run(env, n_rounds), reps=reps)
    overhead_pct = 100.0 * (engine_ms - baseline_ms) / baseline_ms
    identical = bool(
        np.array_equal(_baseline_run(env, n_rounds), _engine_run(env, n_rounds))
    )
    return {
        "n_clients": n_clients,
        "n_params": env.n_params,
        "local_epochs": local_epochs,
        "n_rounds": n_rounds,
        "baseline_ms": round(baseline_ms, 3),
        "engine_ms": round(engine_ms, 3),
        "overhead_pct": round(overhead_pct, 3),
        "overhead_gate_pct": OVERHEAD_GATE_PCT,
        "bit_identical": identical,
    }


def run_partial_participation(
    n_clients: int = 64,
    samples_per_client: int = 40,
    local_epochs: int = 1,
    n_rounds: int = 3,
    fraction: float = 0.2,
    reps: int = 3,
) -> dict:
    """The C = 0.2 scenario row: engine vs inline sampled loop."""
    env = _make_env(n_clients, samples_per_client, local_epochs)
    baseline_ms = _median_ms(
        lambda: _baseline_run(env, n_rounds, fraction), reps=reps
    )
    engine_ms = _median_ms(lambda: _engine_run(env, n_rounds, fraction), reps=reps)
    identical = bool(
        np.array_equal(
            _baseline_run(env, n_rounds, fraction),
            _engine_run(env, n_rounds, fraction),
        )
    )
    return {
        "client_fraction": fraction,
        "participants_per_round": int(round(fraction * n_clients)),
        "n_clients": n_clients,
        "n_rounds": n_rounds,
        "baseline_ms": round(baseline_ms, 3),
        "engine_ms": round(engine_ms, 3),
        "bit_identical": identical,
    }


if __name__ == "__main__":
    import sys

    target = (
        Path(sys.argv[1])
        if len(sys.argv) > 1
        else Path(__file__).resolve().parent.parent / "BENCH_scenarios.json"
    )
    result = {
        "benchmark": (
            "round engine vs pre-engine inline loops: orchestration overhead "
            "at 64 clients (default scenario) and the C=0.2 sampled scenario"
        )
    }
    headline = run_engine_overhead()
    result["headline"] = headline
    result["partial_participation_c02"] = run_partial_participation()
    Path(target).write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    print(f"wrote {target}")
    if not headline["bit_identical"]:
        raise SystemExit("engine run diverged from the baseline loop")
    if headline["overhead_pct"] >= OVERHEAD_GATE_PCT:
        raise SystemExit(
            f"engine overhead {headline['overhead_pct']}% exceeds the "
            f"{OVERHEAD_GATE_PCT}% gate"
        )
