"""Population-scale round benchmark (``BENCH_population.json``).

Demonstrates the O(cohort) round contract of the sharded client-state
store (:mod:`repro.fl.store`): ``local_only`` — the one algorithm whose
state is O(population) — over 100k+ clients at FedAvg fraction
``C = 0.001``, where only the ~100-client cohort is ever widened to
float64 and only the shards those clients touch are resident.

Two populations are timed at a **fixed cohort size** (100k @ C=0.001 vs
200k @ C=0.0005, both a 100-client cohort): if rounds are O(cohort),
doubling the non-sampled population must not move per-round wall-clock.
The record keeps per-round wall times (from the engine's own
``wall_seconds`` stamps), peak RSS, traced-allocation peak, and the
store's resident bytes next to the dense-equivalent footprint — at 200k
clients the sharded store holds the same few touched shards while a
dense plane would double.

Client data is O(1) in the population: a small pool of tiny synthetic
datasets is shared **by reference** across all clients (``cid % pool``),
so 100k ``ClientData`` records cost 100k dataclass shells, not 100k
array copies.  Evaluation is overridden to a no-op — ``local_only``'s
Table-I metric is O(population) by construction and is not what this
bench measures.

``--check`` mode is the tier-1 gate: two smaller populations (20k vs
40k, fixed 32-client cohort) must agree on per-round wall-clock within
**10%** (best-of-rounds, one retry for scheduler noise), and a small
dense-vs-sharded run must produce bit-identical store contents — the
store swap is a memory policy, never a numerics change.

Run via ``python benchmarks/bench_population.py`` (full record) or
``python benchmarks/bench_population.py --check`` (CI gate), or through
``scripts/bench.sh``.
"""

from __future__ import annotations

import json
import resource
import sys
import tracemalloc
from pathlib import Path

import numpy as np

from repro.algorithms.local_only import _LocalRounds
from repro.data.dataset import ArrayDataset
from repro.data.federation import ClientData, Federation
from repro.fl.config import TrainConfig
from repro.fl.history import RunHistory
from repro.fl.rounds import RoundEngine, ScenarioConfig
from repro.fl.simulation import FederatedEnv
from repro.fl.store import StoreConfig

# Fixed-cohort pairs: (n_clients, client_fraction) with n * C constant,
# so any wall-clock growth between the two is population overhead.
FULL_PAIR = ((100_000, 0.001), (200_000, 0.0005))
CHECK_PAIR = ((20_000, 0.0016), (40_000, 0.0008))

#: CI gate: doubling the non-sampled population may not grow per-round
#: wall-clock by more than this fraction (best-of-rounds ratio).
OCOHORT_GATE_FRACTION = 0.10

# Tiny model/data so the bench measures round mechanics, not GEMMs:
# (1, 4, 4) inputs through an MLP with one 32-unit hidden layer is
# ~676 float32 params — small enough that even a 200k-client *dense*
# plane would fit, which keeps the memory comparison honest (the
# sharded win shown here is structural, not an artefact of an
# impossible baseline).
_INPUT_SHAPE = (1, 4, 4)
_N_CLASSES = 4
_MODEL_KWARGS = {"hidden": (32,)}
_POOL_SIZE = 32
_SAMPLES_PER_CLIENT = 32
_SHARD_SIZE = 32


def _tiny_federation(n_clients: int, seed: int = 0) -> Federation:
    """``n_clients`` shells over a shared pool of tiny datasets.

    The pool holds ``_POOL_SIZE`` distinct :class:`ArrayDataset` objects;
    client ``cid`` references pool entry ``cid % _POOL_SIZE`` for both
    splits.  Data memory is O(pool), independent of the population.
    """
    rng = np.random.default_rng(seed)
    pool = []
    for i in range(_POOL_SIZE):
        images = rng.standard_normal(
            (_SAMPLES_PER_CLIENT, *_INPUT_SHAPE), dtype=np.float32
        )
        labels = rng.integers(0, _N_CLASSES, _SAMPLES_PER_CLIENT).astype(np.int64)
        pool.append(
            ArrayDataset(images, labels, _N_CLASSES, f"synthpop/{i}")
        )
    clients = [
        ClientData(cid, pool[cid % _POOL_SIZE], pool[cid % _POOL_SIZE])
        for cid in range(n_clients)
    ]
    return Federation(
        clients=clients,
        n_classes=_N_CLASSES,
        input_shape=_INPUT_SHAPE,
        dataset_name="synthpop",
    )


class _NoEvalLocalRounds(_LocalRounds):
    """``local_only`` rounds with the O(population) evaluation stubbed.

    The Table-I metric loads every client's model — per-client state
    makes it inherently O(population), and it is exactly what this bench
    must *not* time.  Rounds stay the production path end to end
    (broadcast from the store, executor training, store write-back).
    """

    def evaluate(self, engine, round_index):  # noqa: ARG002
        return float("nan"), np.zeros(1)


def _run_rounds(
    n_clients: int,
    client_fraction: float,
    n_rounds: int,
    store: StoreConfig,
    seed: int = 0,
) -> tuple[list[float], _NoEvalLocalRounds, FederatedEnv]:
    """One timed run; per-round wall times come from the engine's stamps."""
    env = FederatedEnv(
        _tiny_federation(n_clients, seed),
        model_name="mlp",
        model_kwargs=dict(_MODEL_KWARGS),
        train_cfg=TrainConfig(
            local_epochs=2, batch_size=8, momentum=0.0, eval_batch_size=64
        ),
        seed=seed,
        store=store,
    )
    strategy = _NoEvalLocalRounds(env)
    engine = RoundEngine(
        env, ScenarioConfig(client_fraction=client_fraction, min_clients=1)
    )
    history = RunHistory("local_only", "synthpop", seed)
    engine.run(strategy, n_rounds, history)
    return [r.wall_seconds for r in history.records], strategy, env


def _population_record(
    n_clients: int,
    client_fraction: float,
    n_rounds: int,
    trace_memory: bool = False,
) -> dict:
    """Record one population point: timing run, then store/memory stats."""
    store = StoreConfig(kind="sharded", shard_size=_SHARD_SIZE)
    walls, strategy, env = _run_rounds(n_clients, client_fraction, n_rounds, store)
    traced_peak = None
    if trace_memory:
        # Separate short traced run: tracemalloc taxes every allocation
        # (~3x on these Python-bound rounds) and would poison the wall
        # times if it wrapped the timing run above.
        tracemalloc.start()
        _run_rounds(n_clients, client_fraction, 2, store)
        _, traced_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    # Steady-state rounds only: round 1 pays one-off warmup (executor
    # buffers, BLAS thread pools) that is not a population cost.
    steady = walls[1:] if len(walls) > 1 else walls
    p = env.layout.n_params
    wire_itemsize = np.dtype(env.layout.wire_dtype).itemsize
    record = {
        "n_clients": n_clients,
        "client_fraction": client_fraction,
        "cohort_size": int(round(n_clients * client_fraction)),
        "n_rounds": n_rounds,
        "wall_seconds_per_round": [round(w, 6) for w in walls],
        "median_round_ms": round(float(np.median(steady)) * 1e3, 3),
        "best_round_ms": round(float(np.min(steady)) * 1e3, 3),
        "store": store.describe(),
        "n_params": int(p),
        "store_resident_bytes": int(strategy.store.resident_bytes()),
        "n_resident_shards": int(strategy.store.n_resident_shards),
        "n_total_shards": -(-n_clients // _SHARD_SIZE),
        "dense_equivalent_bytes": int(n_clients * p * wire_itemsize),
        "peak_rss_mb": round(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0, 1
        ),
    }
    if traced_peak is not None:
        record["tracemalloc_peak_mb"] = round(traced_peak / (1024.0 * 1024.0), 1)
    return record


def _bit_identity_check(n_clients: int = 200, n_rounds: int = 2) -> bool:
    """Dense vs sharded stores must end a run with identical contents."""
    ids = np.arange(n_clients)
    rows = {}
    for kind in ("dense", "sharded"):
        _, strategy, _ = _run_rounds(
            n_clients, 0.05, n_rounds, StoreConfig(kind=kind, shard_size=7)
        )
        rows[kind] = strategy.store.rows(ids)
    return bool(np.array_equal(rows["dense"], rows["sharded"]))


def run_population(
    pair=FULL_PAIR, n_rounds: int = 8, trace_memory: bool = True
) -> dict:
    """Benchmark both population points and derive the O(cohort) ratio."""
    (n1, c1), (n2, c2) = pair
    small = _population_record(n1, c1, n_rounds, trace_memory=trace_memory)
    large = _population_record(n2, c2, n_rounds, trace_memory=trace_memory)
    ratio = large["best_round_ms"] / small["best_round_ms"]
    return {
        "benchmark": "population_scale_rounds",
        "algorithm": "local_only",
        "model": {"name": "mlp", **_MODEL_KWARGS,
                  "input_shape": list(_INPUT_SHAPE)},
        "populations": [small, large],
        "doubling_wall_ratio": round(ratio, 4),
        "doubling_wall_growth_pct": round((ratio - 1.0) * 100.0, 2),
        "ocohort_gate_pct": OCOHORT_GATE_FRACTION * 100.0,
        "ocohort_gate_passed": bool(ratio <= 1.0 + OCOHORT_GATE_FRACTION),
    }


def run_check() -> int:
    """Tier-1 gate: O(cohort) wall-clock + dense/sharded bit-identity.

    Returns a process exit code.  The timing gate compares best-of-rounds
    (min) between the two populations and retries once — CI boxes see
    scheduler noise that a single cold comparison would misread as a
    scaling regression.
    """
    failures: list[str] = []

    if _bit_identity_check():
        print("bit-identity: dense == sharded store contents .. ok")
    else:
        failures.append("dense and sharded store runs diverged bit-wise")

    (n1, c1), (n2, c2) = CHECK_PAIR
    ratio = float("inf")
    for attempt in range(2):
        walls1, _, _ = _run_rounds(n1, c1, n_rounds=6, store=StoreConfig(
            kind="sharded", shard_size=_SHARD_SIZE))
        walls2, _, _ = _run_rounds(n2, c2, n_rounds=6, store=StoreConfig(
            kind="sharded", shard_size=_SHARD_SIZE))
        best1 = min(walls1[1:])
        best2 = min(walls2[1:])
        ratio = min(ratio, best2 / best1)
        print(
            f"O(cohort) attempt {attempt + 1}: {n1} clients {best1 * 1e3:.2f} ms"
            f" vs {n2} clients {best2 * 1e3:.2f} ms"
            f" (ratio {best2 / best1:.3f})"
        )
        if ratio <= 1.0 + OCOHORT_GATE_FRACTION:
            break
    if ratio <= 1.0 + OCOHORT_GATE_FRACTION:
        print(
            f"O(cohort) gate: doubling population grew rounds by "
            f"{(ratio - 1.0) * 100.0:+.1f}% "
            f"(gate < {OCOHORT_GATE_FRACTION * 100.0:.0f}%) .. ok"
        )
    else:
        failures.append(
            f"doubling the non-sampled population grew per-round wall-clock "
            f"by {(ratio - 1.0) * 100.0:.1f}% "
            f"(gate < {OCOHORT_GATE_FRACTION * 100.0:.0f}%)"
        )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("population bench check passed")
    return 0


def main() -> int:
    if "--check" in sys.argv[1:]:
        return run_check()
    record = run_population()
    out_path = Path(__file__).resolve().parent.parent / "BENCH_population.json"
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    small, large = record["populations"]
    print(f"wrote {out_path}")
    print(
        f"  {small['n_clients']} clients @ C={small['client_fraction']}: "
        f"{small['median_round_ms']:.2f} ms/round, "
        f"store {small['store_resident_bytes'] / 1e6:.1f} MB resident "
        f"(dense equivalent {small['dense_equivalent_bytes'] / 1e6:.1f} MB)"
    )
    print(
        f"  {large['n_clients']} clients @ C={large['client_fraction']}: "
        f"{large['median_round_ms']:.2f} ms/round, "
        f"store {large['store_resident_bytes'] / 1e6:.1f} MB resident "
        f"(dense equivalent {large['dense_equivalent_bytes'] / 1e6:.1f} MB)"
    )
    print(
        f"  doubling population: {record['doubling_wall_growth_pct']:+.1f}% "
        f"per-round wall-clock (gate < {record['ocohort_gate_pct']:.0f}%: "
        f"{'pass' if record['ocohort_gate_passed'] else 'FAIL'})"
    )
    return 0 if record["ocohort_gate_passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
