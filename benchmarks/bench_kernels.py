"""Micro-benchmarks of the substrate's hot kernels.

Not a paper artefact — these watch the performance-critical primitives
(im2col convolution, aggregation, linkage, pairwise distances) so
regressions in the simulator's inner loops are visible in benchmark runs.

Two entry points:

* ``pytest benchmarks/bench_kernels.py`` — pytest-benchmark timings of
  every kernel, including the packed-vs-dict aggregation pair.
* ``python benchmarks/bench_kernels.py`` — standalone run of the
  packed-vs-dict aggregation comparison at paper-ish cohort scale
  (256 clients x ~100k params), writing ``BENCH_kernels.json`` at the
  repo root so the performance trajectory is recorded per PR.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

try:  # pytest is only needed for the benchmark-suite entry point.
    import pytest
except ImportError:  # pragma: no cover - standalone mode
    pytest = None

from repro.cluster.distance import pairwise_euclidean
from repro.cluster.hierarchy import linkage
from repro.core.weights import packed_weight_matrix, weight_matrix
from repro.fl.aggregation import (
    packed_weighted_average,
    weighted_average,
    weighted_average_dict,
)
from repro.nn.layers import Conv2d
from repro.nn.loss import CrossEntropyLoss
from repro.nn.models import lenet5, resnet_tiny
from repro.nn.state_flat import StateLayout, pack_states, unpack_state


def _cohort(model_state, n_clients, rng):
    """Random client states shaped like ``model_state``, plus weights."""
    states = [
        {k: rng.standard_normal(v.shape).astype(v.dtype) for k, v in model_state.items()}
        for _ in range(n_clients)
    ]
    weights = rng.integers(1, 100, size=n_clients).astype(np.float64)
    return states, weights


# ----------------------------------------------------------------------
# pytest-benchmark suite
# ----------------------------------------------------------------------
if pytest is not None:

    @pytest.fixture(scope="module")
    def rng():
        return np.random.default_rng(0)

    @pytest.mark.benchmark(group="kernels")
    def test_bench_conv_forward(benchmark, rng):
        layer = Conv2d(3, 16, 5, rng)
        x = rng.standard_normal((32, 3, 32, 32)).astype(np.float32)
        benchmark(layer.forward, x)

    @pytest.mark.benchmark(group="kernels")
    def test_bench_conv_backward(benchmark, rng):
        layer = Conv2d(3, 16, 5, rng)
        x = rng.standard_normal((32, 3, 32, 32)).astype(np.float32)
        out = layer.forward(x)
        grad = rng.standard_normal(out.shape).astype(np.float32)

        def run():
            layer.forward(x)
            layer.backward(grad)

        benchmark(run)

    @pytest.mark.benchmark(group="kernels")
    def test_bench_lenet_train_step(benchmark, rng):
        model = lenet5((3, 32, 32), 10, rng)
        loss = CrossEntropyLoss()
        x = rng.standard_normal((32, 3, 32, 32)).astype(np.float32)
        y = rng.integers(0, 10, size=32)

        def step():
            model.zero_grad()
            loss.forward(model.forward(x), y)
            model.backward(loss.backward())

        benchmark(step)

    @pytest.mark.benchmark(group="aggregation")
    def test_bench_weighted_average_dict(benchmark, rng):
        """The legacy per-key dict loop (reference kernel)."""
        model = lenet5((3, 32, 32), 10, rng)
        states, weights = _cohort(model.state_dict(), 20, rng)
        benchmark(weighted_average_dict, states, weights)

    @pytest.mark.benchmark(group="aggregation")
    def test_bench_weighted_average_packed(benchmark, rng):
        """The flat-plane GEMV kernel on a pre-packed cohort."""
        model = lenet5((3, 32, 32), 10, rng)
        states, weights = _cohort(model.state_dict(), 20, rng)
        matrix, _ = pack_states(states)
        benchmark(packed_weighted_average, matrix, weights)

    @pytest.mark.benchmark(group="aggregation")
    def test_bench_pack_states(benchmark, rng):
        """Cost of entering the flat plane from dict states."""
        model = lenet5((3, 32, 32), 10, rng)
        states, _ = _cohort(model.state_dict(), 20, rng)
        layout = StateLayout.from_state(states[0])
        benchmark(pack_states, states, layout)

    @pytest.mark.benchmark(group="aggregation")
    def test_bench_final_layer_dict_flatten(benchmark, rng):
        model = lenet5((3, 32, 32), 10, rng)
        states, _ = _cohort(model.state_dict(), 20, rng)
        keys = ["classifier.weight", "classifier.bias"]
        benchmark(weight_matrix, states, keys)

    @pytest.mark.benchmark(group="aggregation")
    def test_bench_final_layer_packed_slice(benchmark, rng):
        model = lenet5((3, 32, 32), 10, rng)
        states, _ = _cohort(model.state_dict(), 20, rng)
        matrix, layout = pack_states(states)
        keys = ["classifier.weight", "classifier.bias"]
        benchmark(packed_weight_matrix, matrix, layout, keys)

    @pytest.mark.benchmark(group="kernels")
    def test_bench_pairwise_euclidean(benchmark, rng):
        x = rng.standard_normal((100, 900))
        benchmark(pairwise_euclidean, x)

    @pytest.mark.benchmark(group="kernels")
    def test_bench_linkage_average(benchmark, rng):
        d = pairwise_euclidean(rng.standard_normal((100, 16)))
        benchmark(linkage, d, "average")


# ----------------------------------------------------------------------
# Standalone packed-vs-dict record (BENCH_kernels.json)
# ----------------------------------------------------------------------
def _time_ms(fn, reps: int, warmup: int = 2) -> float:
    """Median wall time of ``fn()`` over ``reps`` runs, in milliseconds."""
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - t0) * 1e3)
    return float(np.median(samples))


def run_packed_vs_dict(
    n_clients: int = 256, out_path: str | Path | None = None
) -> dict:
    """Time the dict-loop vs packed aggregation kernels at cohort scale.

    The model is a deep, narrow CIFAR-style ResNet (~98k params spread
    over 100 parameter tensors — the BN-heavy shape modern FL models
    have), so the dict path pays its real per-key cost.  The packed path
    times only the GEMV: with the flat parameter plane the cohort
    *already lives* as one matrix (executors return flat updates), so no
    per-call packing is charged to it.  Also records the compatibility
    view both ways — reusing the round's packed matrix (GEMV + unpack,
    the hot configuration) and repacking from dicts (the cold one) — and
    verifies bit-identity.
    """
    rng = np.random.default_rng(0)
    model = resnet_tiny((3, 32, 32), 10, rng, width=16, n_blocks=24)
    template = model.state_dict()
    states, weights = _cohort(template, n_clients, rng)
    matrix, layout = pack_states(states)

    dict_ms = _time_ms(lambda: weighted_average_dict(states, weights), reps=7)
    packed_ms = _time_ms(lambda: packed_weighted_average(matrix, weights), reps=21)
    # The compat view is timed as the round loop actually uses it: the
    # cohort already lives packed (executors return flat updates), so the
    # view reuses that matrix instead of repacking per call.
    compat_ms = _time_ms(
        lambda: weighted_average(states, weights, layout, matrix=matrix), reps=7
    )
    repack_compat_ms = _time_ms(
        lambda: weighted_average(states, weights, layout), reps=7
    )
    pack_ms = _time_ms(lambda: pack_states(states, layout), reps=5)

    packed_out = unpack_state(packed_weighted_average(matrix, weights), layout)
    dict_api_out = weighted_average(states, weights, layout)
    legacy_out = weighted_average_dict(states, weights)
    bit_identical = all(
        np.array_equal(packed_out[k], dict_api_out[k]) for k in template
    )
    legacy_max_abs_diff = max(
        float(
            np.max(
                np.abs(
                    packed_out[k].astype(np.float64)
                    - legacy_out[k].astype(np.float64)
                )
            )
        )
        for k in template
    )
    legacy_bit_identical = all(
        np.array_equal(packed_out[k], legacy_out[k]) for k in template
    )

    record = {
        "benchmark": "weighted_average: packed (w @ X GEMV) vs dict (per-key loop)",
        "model": "resnet_tiny(width=16, n_blocks=24)",
        "n_clients": n_clients,
        "n_params": layout.n_params,
        "n_tensors": len(layout.keys),
        "dict_ms": round(dict_ms, 3),
        "packed_ms": round(packed_ms, 3),
        "compat_view_ms": round(compat_ms, 3),
        "compat_view_repack_ms": round(repack_compat_ms, 3),
        "pack_states_ms": round(pack_ms, 3),
        "speedup": round(dict_ms / packed_ms, 2),
        # packed output vs the dict API (a view over the packed kernel):
        # exact by construction, asserted here anyway.
        "bit_identical": bool(bit_identical),
        # packed output vs the legacy per-key loop: also bitwise equal on
        # this cohort after the cast to parameter dtype; the float64
        # discrepancy before the cast is pure summation-order round-off.
        "legacy_loop_bit_identical": bool(legacy_bit_identical),
        "legacy_loop_max_abs_diff": legacy_max_abs_diff,
    }
    if out_path is not None:
        Path(out_path).write_text(json.dumps(record, indent=2) + "\n")
    return record


if __name__ == "__main__":
    import sys

    target = (
        Path(sys.argv[1])
        if len(sys.argv) > 1
        else Path(__file__).resolve().parent.parent / "BENCH_kernels.json"
    )
    result = run_packed_vs_dict(out_path=target)
    print(json.dumps(result, indent=2))
    print(f"wrote {target}")
