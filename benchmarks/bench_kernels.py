"""Micro-benchmarks of the substrate's hot kernels.

Not a paper artefact — these watch the performance-critical primitives
(im2col convolution, aggregation, linkage, pairwise distances) so
regressions in the simulator's inner loops are visible in benchmark runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.distance import pairwise_euclidean
from repro.cluster.hierarchy import linkage
from repro.fl.aggregation import weighted_average
from repro.nn.layers import Conv2d
from repro.nn.loss import CrossEntropyLoss
from repro.nn.models import lenet5


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(0)


@pytest.mark.benchmark(group="kernels")
def test_bench_conv_forward(benchmark, rng):
    layer = Conv2d(3, 16, 5, rng)
    x = rng.standard_normal((32, 3, 32, 32)).astype(np.float32)
    benchmark(layer.forward, x)


@pytest.mark.benchmark(group="kernels")
def test_bench_conv_backward(benchmark, rng):
    layer = Conv2d(3, 16, 5, rng)
    x = rng.standard_normal((32, 3, 32, 32)).astype(np.float32)
    out = layer.forward(x)
    grad = rng.standard_normal(out.shape).astype(np.float32)

    def run():
        layer.forward(x)
        layer.backward(grad)

    benchmark(run)


@pytest.mark.benchmark(group="kernels")
def test_bench_lenet_train_step(benchmark, rng):
    model = lenet5((3, 32, 32), 10, rng)
    loss = CrossEntropyLoss()
    x = rng.standard_normal((32, 3, 32, 32)).astype(np.float32)
    y = rng.integers(0, 10, size=32)

    def step():
        model.zero_grad()
        loss.forward(model.forward(x), y)
        model.backward(loss.backward())

    benchmark(step)


@pytest.mark.benchmark(group="kernels")
def test_bench_weighted_average(benchmark, rng):
    model = lenet5((3, 32, 32), 10, rng)
    states = [model.state_dict() for _ in range(20)]
    weights = list(rng.integers(1, 100, size=20))
    benchmark(weighted_average, states, weights)


@pytest.mark.benchmark(group="kernels")
def test_bench_pairwise_euclidean(benchmark, rng):
    x = rng.standard_normal((100, 900))
    benchmark(pairwise_euclidean, x)


@pytest.mark.benchmark(group="kernels")
def test_bench_linkage_average(benchmark, rng):
    d = pairwise_euclidean(rng.standard_normal((100, 16)))
    benchmark(linkage, d, "average")
