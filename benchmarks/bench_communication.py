"""Benchmark C1 — the abstract's communication-cost claim.

Prints per-method traffic (total, clustering-phase, and traffic needed to
first reach a target accuracy) and asserts:

* FedClust's clustering-phase upload is far below PACFL's (partial
  final-layer weights vs d×p SVD bases), and
* IFCA's total download exceeds FedAvg's (k models per round), while
  FedClust's stays comparable to FedAvg's.
"""

from __future__ import annotations

import pytest

from repro.experiments.ablations import run_communication_study

EXPERIMENT_ID = "C1"


def _c1(experiment_cache, scale):
    if EXPERIMENT_ID not in experiment_cache:
        experiment_cache[EXPERIMENT_ID] = run_communication_study(scale=scale)
    return experiment_cache[EXPERIMENT_ID]


@pytest.mark.benchmark(group="communication", min_rounds=1, max_time=1.0, warmup=False)
def test_bench_communication(benchmark, experiment_cache, scale, capsys):
    result = benchmark.pedantic(
        lambda: _c1(experiment_cache, scale), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(result.format())

    fedclust = result.row_of("fedclust")
    pacfl = result.row_of("pacfl")
    ifca = result.row_of("ifca")
    fedavg = result.row_of("fedavg")

    # One-shot clustering uploads: final layer ≪ SVD bases.
    assert 0 < fedclust["clustering_upload"] < pacfl["clustering_upload"]
    # IFCA pays k× downloads; FedClust does not.
    assert ifca["total_download"] > 1.5 * fedavg["total_download"]
    assert fedclust["total_download"] <= 1.1 * fedavg["total_download"]
