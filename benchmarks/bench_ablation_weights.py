"""Benchmark A2 — weight-selection ablation.

What should clients upload for clustering?  The paper's answer is the
final layer; this bench quantifies the trade-off: the final layer gives
(at least) the cluster recovery of the full model at a fraction of the
upload, while an early conv layer carries far weaker signal — the same
story Fig. 1 tells, now measured end-to-end through the actual
clustering pipeline.
"""

from __future__ import annotations

import pytest

from repro.experiments.ablations import run_weight_ablation

EXPERIMENT_ID = "A2"


def _a2(experiment_cache, scale):
    if EXPERIMENT_ID not in experiment_cache:
        experiment_cache[EXPERIMENT_ID] = run_weight_ablation(scale=scale)
    return experiment_cache[EXPERIMENT_ID]


@pytest.mark.benchmark(group="ablation", min_rounds=1, max_time=1.0, warmup=False)
def test_bench_ablation_weights(benchmark, experiment_cache, scale, capsys):
    result = benchmark.pedantic(
        lambda: _a2(experiment_cache, scale), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(result.format())

    final = result.row_of("final_layer")
    full = result.row_of("all")
    conv1 = result.row_of("index:1")

    # Partial upload is a small fraction of the full model...
    assert final["upload"] < 0.25 * full["upload"]
    # ...with cluster recovery at least as good as the full upload...
    assert final["ari"] >= full["ari"] - 1e-9
    assert final["ari"] == pytest.approx(1.0)
    # ...while the early conv layer's signature is weaker.
    assert conv1["separability"] < final["separability"]
