"""Batched-vs-serial cohort training benchmark (``BENCH_train.json``).

Times one communication round's local training — the dominant cost of
every federated simulation — two ways:

* **serial executor** (:class:`repro.fl.parallel.SerialClientExecutor`):
  the reference kernel, one load → local-SGD loop → snapshot per client;
* **batched executor** (:class:`repro.fl.parallel.BatchedClientExecutor`):
  the whole cohort trains in lockstep on the flat plane
  (:mod:`repro.fl.train_flat`), with large linear layers riding the
  shared-base factored representation (:mod:`repro.nn.batched`).

The headline preset is the wide MLP from ``BENCH_eval.json`` (~1.6M
params, ``hidden=(512,)``) at 64 clients × 3 local epochs — the
few-local-epochs regime clustered-FL sweeps live in.  A 2-epoch
secondary shows the shorter-schedule ratio, and ``secondary_lenet5``
records the honest conv story: no batched mirror exists for the im2col
convolution, so every client falls back to the serial kernel and the
"speedup" is ~1x by construction (the dispatch counts prove the routing).

Also recorded: the worst per-client update deviation between the two
executors (the fast correctness gates live in
``tests/test_fl_train_flat.py``; this is the per-PR trajectory record).

Run via ``python benchmarks/bench_train.py`` or ``scripts/bench.sh``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

try:  # package import (pytest) vs script import (scripts/bench.sh)
    from benchmarks.bench_eval import _federation_env
except ImportError:  # pragma: no cover - script entry point
    from bench_eval import _federation_env

from repro.fl.config import TrainConfig
from repro.fl.parallel import (
    BatchedClientExecutor,
    SerialClientExecutor,
    UpdateTask,
)


def _time_ms(fn, reps: int, warmup: int = 1) -> float:
    """Median wall time of ``fn()`` over ``reps`` runs, in milliseconds."""
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - t0) * 1e3)
    return float(np.median(samples))


def run_serial_vs_batched(
    n_clients: int = 64,
    samples_per_client: int = 40,
    local_epochs: int = 3,
    batch_size: int = 32,
    model_name: str = "mlp",
    model_kwargs: dict | None = None,
    reps: int = 5,
) -> dict:
    """Time one round of cohort training, serial vs batched executor.

    Both executors receive identical tasks (one shared packed broadcast
    row, the flat payload the in-tree algorithms ship) and the same
    round index, so per-client RNG streams and minibatch schedules are
    identical — the measured difference is purely execution strategy.
    """
    if model_kwargs is None and model_name == "mlp":
        model_kwargs = {"hidden": (512,)}
    env = _federation_env(
        n_clients,
        samples_per_client,
        model_name=model_name,
        model_kwargs=model_kwargs,
    )
    env.train_cfg = TrainConfig(local_epochs=local_epochs, batch_size=batch_size)
    vector = env.layout.pack(env.init_state())
    tasks = [UpdateTask(cid, flat=vector) for cid in range(n_clients)]

    serial = SerialClientExecutor()
    batched = BatchedClientExecutor()
    serial_ms = _time_ms(lambda: serial.run(env, tasks, 1), reps=reps)
    batched_ms = _time_ms(lambda: batched.run(env, tasks, 1), reps=reps)

    serial_updates = serial.run(env, tasks, 1)
    batched_updates = batched.run(env, tasks, 1)
    max_diff = max(
        float(np.abs(s.flat - b.flat).max())
        for s, b in zip(serial_updates, batched_updates)
    )
    scale = max(float(np.abs(s.flat).max()) for s in serial_updates)

    return {
        "model": f"{model_name}({model_kwargs})" if model_kwargs else model_name,
        "n_clients": n_clients,
        "n_params": env.n_params,
        "train_samples_per_client": int(
            len(env.federation.clients[0].train)
        ),
        "local_epochs": local_epochs,
        "batch_size": batch_size,
        "steps_per_client": int(serial_updates[0].n_batches),
        "serial_ms": round(serial_ms, 3),
        "batched_ms": round(batched_ms, 3),
        "speedup": round(serial_ms / batched_ms, 2),
        # Worst per-client deviation between executors (float32 models
        # diverge at summation-order level; the tolerance gate is in
        # tests/test_fl_train_flat.py).
        "max_update_abs_diff": float(max_diff),
        "max_update_abs": float(scale),
        # How the batched executor actually routed the tasks — "serial"
        # counts are transparent fallbacks (conv models).
        "dispatch": dict(batched.last_dispatch),
    }


if __name__ == "__main__":
    import sys

    target = (
        Path(sys.argv[1])
        if len(sys.argv) > 1
        else Path(__file__).resolve().parent.parent / "BENCH_train.json"
    )
    result = {
        "benchmark": (
            "cohort local training: lockstep batched executor (flat plane, "
            "shared-base factored linear layers) vs serial per-client loop"
        )
    }
    result.update(run_serial_vs_batched())
    # Shorter-schedule secondary: 2 local epochs amortises the round's
    # fixed costs over fewer lockstep steps, so the ratio is lower —
    # recorded so the trajectory shows the schedule dependence.
    short = run_serial_vs_batched(local_epochs=2)
    result["secondary_2_epochs"] = {
        k: short[k]
        for k in ("local_epochs", "serial_ms", "batched_ms", "speedup", "dispatch")
    }
    # Conv counterpoint: LeNet-5 has no batched mirror, so the batched
    # executor routes every client to the serial reference kernel —
    # honest ~1x, with the dispatch counts making the fallback explicit.
    conv = run_serial_vs_batched(
        n_clients=32, model_name="lenet5", model_kwargs={}, reps=2
    )
    result["secondary_lenet5"] = {
        k: conv[k]
        for k in ("model", "serial_ms", "batched_ms", "speedup", "dispatch")
    }
    Path(target).write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    print(f"wrote {target}")
