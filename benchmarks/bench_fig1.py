"""Benchmark F1 — regenerate the paper's Fig. 1 (motivation probe).

Prints the four distance-matrix panels (as terminal heat maps) for the
VGG-16-layout layers the paper shows — Layer 1 (conv), Layer 7 (conv),
Layer 14 (FC), Layer 16 (FC/classifier) — and asserts the paper's
observation: the planted two-group client structure is visible in the
final layer's distances and not in the early convolution's.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig1 import format_fig1, run_fig1

EXPERIMENT_ID = "F1"


def _fig1(experiment_cache, scale):
    if EXPERIMENT_ID not in experiment_cache:
        experiment_cache[EXPERIMENT_ID] = run_fig1(scale=scale)
    return experiment_cache[EXPERIMENT_ID]


@pytest.mark.benchmark(group="fig1", min_rounds=1, max_time=1.0, warmup=False)
def test_bench_fig1(benchmark, experiment_cache, scale, capsys):
    result = benchmark.pedantic(
        lambda: _fig1(experiment_cache, scale), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(format_fig1(result))

    sep = result.separability
    # The classifier (Layer 16) exposes the group structure...
    assert sep[16] > 1.5, f"final layer separability too low: {sep[16]:.2f}"
    # ...far more clearly than the first convolution (Layer 1)...
    assert sep[16] > 1.5 * sep[1], f"16 vs 1: {sep[16]:.2f} vs {sep[1]:.2f}"
    # ...and the deep FC layers beat the early conv layers generally.
    assert min(sep[14], sep[16]) > max(sep[1], sep[7]), (
        f"FC layers {sep[14]:.2f}/{sep[16]:.2f} should dominate conv layers "
        f"{sep[1]:.2f}/{sep[7]:.2f}"
    )
