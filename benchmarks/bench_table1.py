"""Benchmark T1 — regenerate the paper's Table I.

Prints the regenerated accuracy table (ours vs the paper's reported
numbers) and asserts the *shape* claims that transfer from testbed to
simulator:

* FedClust wins every dataset column (the paper's headline), and
* clustered/personalised methods beat plain FedAvg on the hard dataset.

Absolute values are not compared — the substrate is a synthetic-data
simulator (see DESIGN.md §2) — only ordering.
"""

from __future__ import annotations

import pytest

from repro.experiments.table1 import format_table1, run_table1

EXPERIMENT_ID = "T1"


def _table1(experiment_cache, scale):
    if EXPERIMENT_ID not in experiment_cache:
        experiment_cache[EXPERIMENT_ID] = run_table1(scale=scale)
    return experiment_cache[EXPERIMENT_ID]


@pytest.mark.benchmark(group="table1", min_rounds=1, max_time=1.0, warmup=False)
def test_bench_table1(benchmark, experiment_cache, scale, capsys):
    """Time the full Table-I regeneration and print the table."""

    def regenerate():
        return _table1(experiment_cache, scale)

    result = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table1(result))

    # Shape assertion 1: FedClust tops every dataset column.
    for dataset in result.datasets:
        assert result.winner(dataset) == "fedclust", (
            f"expected fedclust to win {dataset}, got {result.winner(dataset)} "
            f"(means: {[(m, round(result.cell(m, dataset).mean, 3)) for m in result.methods]})"
        )
    # Shape assertion 2: on the hardest dataset the best clustered method
    # clearly beats the global-model baseline.
    fedavg = result.cell("fedavg", "cifar10").mean
    fedclust = result.cell("fedclust", "cifar10").mean
    assert fedclust > fedavg + 0.02
