#!/usr/bin/env bash
# Ablation matrix refresh: run the scenario × algorithm regression
# surface and regenerate the knob-importance report.
#
#   scripts/ablate.sh                    # nightly matrix -> ablation_out/
#   scripts/ablate.sh --matrix check     # the 6-cell fast-lane smoke
#   scripts/ablate.sh --out my_dir       # alternate record directory
#
# Records are content-addressed (one JSON per run ID under
# <out>/runs/), so re-running an interrupted or unchanged matrix only
# executes the missing cells and then refreshes <out>/ABLATION.{json,md}.
# Extra arguments are passed through to `repro ablate`.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
exec python -m repro ablate --matrix nightly "$@"
