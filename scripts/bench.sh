#!/usr/bin/env bash
# Benchmark refresh: regenerate the per-PR performance records.
#
#   scripts/bench.sh        # rewrites BENCH_kernels.json + BENCH_eval.json
#
# BENCH_kernels.json — packed-vs-dict aggregation kernels (PR 1);
# BENCH_eval.json    — grouped/fused vs per-client evaluation (PR 2).
# Both records carry bit-identity flags; the fast correctness gates live
# in the test suite (scripts/tier1.sh), so a benchmark run is about
# timings, not correctness.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
python benchmarks/bench_kernels.py
python benchmarks/bench_eval.py
