#!/usr/bin/env bash
# Benchmark refresh: regenerate the per-PR performance records.
#
#   scripts/bench.sh   # rewrites BENCH_kernels.json + BENCH_eval.json
#                      #        + BENCH_train.json + BENCH_scenarios.json
#                      #        + BENCH_population.json
#
# BENCH_kernels.json    — packed-vs-dict aggregation kernels (PR 1);
# BENCH_eval.json       — grouped/fused vs per-client evaluation (PR 2);
# BENCH_train.json      — batched lockstep vs serial cohort training (PR 3);
# BENCH_scenarios.json  — round-engine overhead vs the pre-engine loops
#                         (PR 4; gated < 2%, plus the C=0.2 sampled row);
# BENCH_population.json — sharded-store rounds at 100k+ clients
#                         (O(cohort) wall-clock + resident-memory record).
# The records carry parity/bit-identity fields; the fast correctness
# gates live in the test suite (scripts/tier1.sh), so a benchmark run is
# about timings, not correctness.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
python benchmarks/bench_kernels.py
python benchmarks/bench_eval.py
python benchmarks/bench_train.py
python benchmarks/bench_scenarios.py
python benchmarks/bench_population.py
