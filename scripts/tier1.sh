#!/usr/bin/env bash
# Tier-1 verification: the repo's own test suite with src/ on PYTHONPATH.
#
#   scripts/tier1.sh                 # full tier-1 run (the gate)
#   scripts/tier1.sh -m "not slow"   # fast lane: skip long end-to-end sims
#
# Extra arguments are passed through to pytest.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
exec python -m pytest -x -q "$@"
