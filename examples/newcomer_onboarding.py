#!/usr/bin/env python3
"""Real-time newcomer onboarding — the paper's Fig. 2, step ⑥.

A federation of clients in two latent groups trains with FedClust.  A new
client then joins *after* the one-shot clustering round.  FedClust assigns
it to an existing cluster from a single partial-weight upload — no
re-clustering, no extra rounds — and the newcomer immediately benefits
from its cluster's model.

Run:
    python examples/newcomer_onboarding.py
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import FederatedEnv, FedClust, FedClustConfig, TrainConfig, build_federation
from repro.fl.evaluation import evaluate_model
from repro.utils.logging import enable_console_logging


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="fmnist")
    parser.add_argument("--clients", type=int, default=10,
                        help="initial federation size (one extra client joins later)")
    parser.add_argument("--rounds", type=int, default=6)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    enable_console_logging()

    # Generate clients in two planted label groups; hold the last one out.
    full = build_federation(
        args.dataset,
        n_clients=args.clients + 1,
        n_samples=2200,
        seed=args.seed,
        partition="label_cluster",
    )
    newcomer = full.clients[args.clients]
    newcomer_group = int(full.true_groups[args.clients])
    federation = full.subset(list(range(args.clients)))
    print(federation.summary())
    print(f"newcomer held out: client with label group G{newcomer_group + 1}")

    env = FederatedEnv(
        federation,
        model_name="lenet5",
        train_cfg=TrainConfig(local_epochs=1, batch_size=32, lr=0.03, momentum=0.9),
        seed=args.seed,
    )
    algorithm = FedClust(
        FedClustConfig(warmup_steps=20, warmup_lr=0.01, warm_start_final_layer=True)
    )
    result = algorithm.run(env, n_rounds=args.rounds, eval_every=2)
    fitted = result.extras["fitted"]
    print(f"\ntrained {args.rounds} rounds; clusters found: {result.n_clusters}")
    for g in range(result.n_clusters):
        members = np.flatnonzero(result.cluster_labels == g)
        groups = set(int(x) for x in federation.true_groups[members])
        print(f"  cluster {g}: clients {members.tolist()} "
              f"(true groups {sorted(groups)})")

    print("\n-- newcomer joins --")
    assignment, serving_state = algorithm.incorporate_newcomer(
        env, fitted, newcomer.train, newcomer_id=args.clients
    )
    print(f"uploaded {fitted.weight_matrix.shape[1]} partial weights "
          f"(vs {env.n_params} full-model parameters)")
    print(f"assigned to cluster {assignment.cluster} "
          f"(margin over runner-up: {assignment.margin:.2f})")

    env.scratch_model.load_state_dict(dict(serving_state))
    with_cluster = evaluate_model(env.scratch_model, newcomer.test).accuracy
    env.scratch_model.load_state_dict(fitted.init_state)
    with_init = evaluate_model(env.scratch_model, newcomer.test).accuracy
    print(f"newcomer local-test accuracy: {with_cluster:.3f} with its cluster "
          f"model vs {with_init:.3f} with the initial global model")


if __name__ == "__main__":
    main()
