#!/usr/bin/env python3
"""Compare all six Table-I methods on one non-IID federation.

Runs FedAvg, FedProx, CFL, IFCA, PACFL and FedClust on the *same*
federation (same data, same model init) and prints a Table-I-style
column: final mean local accuracy, clusters found, and traffic.

Run:
    python examples/compare_baselines.py
    python examples/compare_baselines.py --dataset svhn --rounds 12
"""

from __future__ import annotations

import argparse
import time

from repro import FederatedEnv, TrainConfig, build_federation, make_algorithm
from repro.experiments.presets import algorithm_kwargs, get_scale
from repro.utils.logging import enable_console_logging
from repro.utils.tables import Table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="cifar10")
    parser.add_argument("--clients", type=int, default=10)
    parser.add_argument("--samples", type=int, default=2000)
    parser.add_argument("--rounds", type=int, default=8)
    parser.add_argument("--alpha", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    enable_console_logging()

    scale = get_scale("quick")
    federation = build_federation(
        args.dataset,
        n_clients=args.clients,
        n_samples=args.samples,
        seed=args.seed,
        partition="dirichlet",
        alpha=args.alpha,
    )
    print(federation.summary())

    table = Table(
        title=f"Method comparison — {args.dataset}, Dir({args.alpha}), "
        f"{args.rounds} rounds",
        columns=["Method", "Final acc", "± clients", "Clusters", "MB", "Seconds"],
    )
    for method in ("fedavg", "fedprox", "cfl", "ifca", "pacfl", "fedclust"):
        env = FederatedEnv(
            federation,
            model_name="lenet5",
            train_cfg=TrainConfig(local_epochs=1, batch_size=32, lr=0.03, momentum=0.9),
            seed=args.seed,
        )
        algorithm = make_algorithm(method, **algorithm_kwargs(method, scale))
        started = time.perf_counter()
        result = algorithm.run(env, n_rounds=args.rounds, eval_every=args.rounds)
        table.add_row(
            [
                method,
                f"{100 * result.final_accuracy:.1f}",
                f"{100 * result.accuracy_std:.1f}",
                str(result.n_clusters),
                f"{result.comm['total']['bytes'] / 1e6:.1f}",
                f"{time.perf_counter() - started:.0f}",
            ]
        )
    print()
    print(table.render())


if __name__ == "__main__":
    main()
