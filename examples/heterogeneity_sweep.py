#!/usr/bin/env python3
"""Heterogeneity sweep: when does clustering help? (paper's future work)

Two sweeps over the same question from two directions:

* **statistical** heterogeneity — the Dirichlet concentration α from
  severe label skew (0.05) to near-IID (100), FedClust vs FedAvg at
  each level.  The expected picture: a large FedClust advantage under
  severe skew that shrinks toward zero as data becomes IID — clustered
  FL is a heterogeneity tool, not a universal win.
* **system** heterogeneity — participation fraction C and seeded client
  failures, routed through the round engine's ``ScenarioConfig`` (the
  same policy object every algorithm accepts).  This shows how the
  Table-I ordering degrades when clients sit out rounds or go dark
  mid-round.

Run:
    python examples/heterogeneity_sweep.py
    python examples/heterogeneity_sweep.py --alphas 0.05 0.5 5
    python examples/heterogeneity_sweep.py --skip-alpha   # scenarios only
"""

from __future__ import annotations

import argparse

from repro.data.federation import build_federation
from repro.experiments.ablations import run_alpha_sweep
from repro.experiments.presets import algorithm_kwargs, get_scale
from repro.fl.rounds import ScenarioConfig
from repro.fl.simulation import FederatedEnv
from repro.utils.logging import enable_console_logging

#: (label, ScenarioConfig) cells for the system-heterogeneity sweep.
#: The v2 middleware rows: stale folding turns the "late" row's wasted
#: work into discounted contributions, compute budgets model device
#: speed spread (FedNova-style steps-taken weighting), and departures
#: drain the federation mid-run.
SCENARIOS = [
    ("C=1.0, reliable", ScenarioConfig()),
    ("C=0.5, reliable", ScenarioConfig(client_fraction=0.5)),
    ("C=1.0, 20% fail", ScenarioConfig(failure_rate=0.2)),
    ("C=0.5, 20% fail", ScenarioConfig(client_fraction=0.5, failure_rate=0.2)),
    (
        "C=0.5, 20% fail, 20% late",
        ScenarioConfig(client_fraction=0.5, failure_rate=0.2, straggler_rate=0.2),
    ),
    (
        "C=0.5, 20% late, stale folded",
        ScenarioConfig(
            client_fraction=0.5, straggler_rate=0.2, staleness_decay=0.5
        ),
    ),
    (
        "C=1.0, budgets 2..8 steps",
        ScenarioConfig(compute_budget=(2, 8)),
    ),
    (
        "C=0.5, budgets + stale",
        ScenarioConfig(
            client_fraction=0.5,
            straggler_rate=0.2,
            staleness_decay=0.5,
            compute_budget=(2, 8),
        ),
    ),
]


def departure_scenario(n_clients: int, n_rounds: int) -> ScenarioConfig:
    """A quarter of the federation departs at the midpoint."""
    leavers = range(0, n_clients, 4)
    mid = max(2, n_rounds // 2)
    return ScenarioConfig(departures={cid: mid for cid in leavers})


def run_scenario_sweep(dataset: str, alpha: float, seed: int, scale) -> list[tuple]:
    """FedAvg vs FedClust across participation/failure scenarios."""
    from repro.algorithms.registry import make_algorithm

    federation = build_federation(
        dataset,
        n_clients=scale.n_clients,
        n_samples=scale.n_samples,
        seed=seed,
        partition="dirichlet",
        alpha=alpha,
    )
    cells = SCENARIOS + [
        ("25% depart mid-run", departure_scenario(scale.n_clients, scale.n_rounds)),
    ]
    rows = []
    for label, scenario in cells:
        cell = {}
        for method in ("fedavg", "fedclust"):
            env = FederatedEnv(
                federation,
                model_name="lenet5",
                train_cfg=scale.train,
                seed=seed,
            )
            algo = make_algorithm(method, **algorithm_kwargs(method, scale))
            result = algo.run(
                env,
                n_rounds=scale.n_rounds,
                eval_every=scale.eval_every,
                scenario=scenario,
            )
            cell[method] = result.final_accuracy
        rows.append((label, cell["fedavg"], cell["fedclust"]))
    return rows


def bar(value: float, width: int = 40) -> str:
    filled = int(round(value * width))
    return "#" * filled + "." * (width - filled)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--alphas", type=float, nargs="+",
                        default=[0.05, 0.1, 0.5, 1.0, 100.0])
    parser.add_argument("--dataset", default="cifar10")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scenario-alpha", type=float, default=0.1,
                        help="Dirichlet alpha held fixed in the scenario sweep")
    parser.add_argument("--skip-alpha", action="store_true",
                        help="run only the participation/failure sweep")
    parser.add_argument("--skip-scenarios", action="store_true",
                        help="run only the alpha sweep")
    args = parser.parse_args()
    enable_console_logging()
    scale = get_scale("quick")

    if not args.skip_alpha:
        result = run_alpha_sweep(
            alphas=tuple(args.alphas),
            dataset=args.dataset,
            scale=scale,
            seed=args.seed,
        )
        print()
        print(result.format())
        print("\naccuracy bars (F = FedAvg, C = FedClust):")
        for i, alpha in enumerate(result.alphas):
            print(f"alpha={alpha:<6g} F |{bar(result.fedavg[i])}| "
                  f"{100 * result.fedavg[i]:.1f}")
            print(f"{'':12} C |{bar(result.fedclust[i])}| "
                  f"{100 * result.fedclust[i]:.1f}  (k={result.fedclust_k[i]})")
        gains = [c - a for a, c in zip(result.fedavg, result.fedclust)]
        print(f"\nFedClust advantage: {100 * gains[0]:+.1f} points at "
              f"alpha={result.alphas[0]:g} -> {100 * gains[-1]:+.1f} points at "
              f"alpha={result.alphas[-1]:g}")

    if not args.skip_scenarios:
        print(f"\nsystem-heterogeneity sweep (alpha={args.scenario_alpha:g}, "
              "seeded scenarios through the round engine):")
        rows = run_scenario_sweep(
            args.dataset, args.scenario_alpha, args.seed, scale
        )
        width = max(len(label) for label, _, _ in rows)
        for label, fedavg_acc, fedclust_acc in rows:
            print(f"{label:<{width}}  F |{bar(fedavg_acc)}| {100 * fedavg_acc:.1f}")
            print(f"{'':{width}}  C |{bar(fedclust_acc)}| {100 * fedclust_acc:.1f}")


if __name__ == "__main__":
    main()
