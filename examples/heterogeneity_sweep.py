#!/usr/bin/env python3
"""Heterogeneity sweep: when does clustering help? (paper's future work)

Sweeps the Dirichlet concentration α from severe label skew (0.05) to
near-IID (100) and compares FedClust against FedAvg at each level,
printing a small text chart.  The expected picture: a large FedClust
advantage under severe skew that shrinks toward zero as data becomes
IID — clustered FL is a heterogeneity tool, not a universal win.

Run:
    python examples/heterogeneity_sweep.py
    python examples/heterogeneity_sweep.py --alphas 0.05 0.5 5
"""

from __future__ import annotations

import argparse

from repro.experiments.ablations import run_alpha_sweep
from repro.experiments.presets import get_scale
from repro.utils.logging import enable_console_logging


def bar(value: float, width: int = 40) -> str:
    filled = int(round(value * width))
    return "#" * filled + "." * (width - filled)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--alphas", type=float, nargs="+",
                        default=[0.05, 0.1, 0.5, 1.0, 100.0])
    parser.add_argument("--dataset", default="cifar10")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    enable_console_logging()

    result = run_alpha_sweep(
        alphas=tuple(args.alphas),
        dataset=args.dataset,
        scale=get_scale("quick"),
        seed=args.seed,
    )
    print()
    print(result.format())
    print("\naccuracy bars (F = FedAvg, C = FedClust):")
    for i, alpha in enumerate(result.alphas):
        print(f"alpha={alpha:<6g} F |{bar(result.fedavg[i])}| "
              f"{100 * result.fedavg[i]:.1f}")
        print(f"{'':12} C |{bar(result.fedclust[i])}| "
              f"{100 * result.fedclust[i]:.1f}  (k={result.fedclust_k[i]})")
    gains = [c - a for a, c in zip(result.fedavg, result.fedclust)]
    print(f"\nFedClust advantage: {100 * gains[0]:+.1f} points at "
          f"alpha={result.alphas[0]:g} -> {100 * gains[-1]:+.1f} points at "
          f"alpha={result.alphas[-1]:g}")


if __name__ == "__main__":
    main()
