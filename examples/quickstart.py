#!/usr/bin/env python3
"""Quickstart: train FedClust on a non-IID federation in ~30 seconds.

Builds a synthetic CIFAR-10-like federation with Dirichlet(0.1) label
skew (the paper's Table-I setting), runs FedClust, and prints the round-
by-round accuracy, the discovered clusters, and the communication bill.

Run:
    python examples/quickstart.py
    python examples/quickstart.py --dataset fmnist --clients 16 --rounds 12
"""

from __future__ import annotations

import argparse

from repro import (
    FederatedEnv,
    FedClust,
    FedClustConfig,
    TrainConfig,
    build_federation,
)
from repro.core import ClusteringConfig
from repro.utils.logging import enable_console_logging


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="cifar10",
                        help="cifar10 | fmnist | svhn (synthetic lookalikes)")
    parser.add_argument("--clients", type=int, default=10)
    parser.add_argument("--samples", type=int, default=2000)
    parser.add_argument("--rounds", type=int, default=8)
    parser.add_argument("--alpha", type=float, default=0.1,
                        help="Dirichlet concentration (0.1 = paper's severe skew)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    enable_console_logging()

    federation = build_federation(
        args.dataset,
        n_clients=args.clients,
        n_samples=args.samples,
        seed=args.seed,
        partition="dirichlet",
        alpha=args.alpha,
    )
    print(federation.summary())

    env = FederatedEnv(
        federation,
        model_name="lenet5",
        train_cfg=TrainConfig(local_epochs=1, batch_size=32, lr=0.03, momentum=0.9),
        seed=args.seed,
    )
    algorithm = FedClust(
        FedClustConfig(
            warmup_steps=20,
            warmup_lr=0.01,
            warm_start_final_layer=True,
            clustering=ClusteringConfig(cut="silhouette", max_clusters=args.clients // 2),
        )
    )
    result = algorithm.run(env, n_rounds=args.rounds, eval_every=2)

    print("\nround  train-loss  mean-local-acc  clusters")
    for record in result.history.records:
        # Off-cadence rounds (eval_every=2) carry no measurement — the
        # history records NaN there, not a stale copy of the last eval.
        acc = (
            f"{record.mean_local_accuracy:>14.3f}"
            if record.evaluated
            else f"{'—':>14s}"
        )
        print(
            f"{record.round_index:>5d}  {record.mean_train_loss:>10.3f}  "
            f"{acc}  {record.n_clusters:>8d}"
        )

    print(f"\nfinal mean local accuracy: {result.final_accuracy:.3f} "
          f"(± {result.accuracy_std:.3f} across clients)")
    print(f"clusters discovered (no predefined k): {result.n_clusters}")
    for g in range(result.n_clusters):
        members = [i for i, label in enumerate(result.cluster_labels) if label == g]
        print(f"  cluster {g}: clients {members}")
    comm = result.comm["total"]
    clustering = result.comm.get("clustering", {})
    print(
        f"traffic: {comm['bytes'] / 1e6:.1f} MB total; clustering phase uploaded "
        f"only {clustering.get('uploaded', 0) * 4 / 1e3:.1f} KB "
        "(partial final-layer weights)"
    )


if __name__ == "__main__":
    main()
