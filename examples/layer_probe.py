#!/usr/bin/env python3
"""Layer-wise weight-distance probe — the paper's Fig. 1, in your terminal.

Ten clients in two planted label groups (G1 = classes 0–4, G2 = 5–9)
train a scaled VGG-16-layout network locally from a shared init.  For
each probed weighted layer the pairwise Euclidean distance matrix
between clients' weights is rendered as a heat map (dark = similar).
The block structure — invisible at Layer 1, crisp at Layer 16 — is the
entire motivation for FedClust's partial-weight upload.

Run:
    python examples/layer_probe.py
    python examples/layer_probe.py --layers 1 4 8 12 16 --steps 40
"""

from __future__ import annotations

import argparse

from repro.experiments.fig1 import format_fig1, run_fig1
from repro.experiments.presets import get_scale
from repro.utils.logging import enable_console_logging


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="cifar10")
    parser.add_argument("--clients", type=int, default=10)
    parser.add_argument("--layers", type=int, nargs="+", default=[1, 7, 14, 16],
                        help="1-based weighted-layer indices (VGG-16 layout has 16)")
    parser.add_argument("--steps", type=int, default=None,
                        help="local SGD steps per client (default: scale preset)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    enable_console_logging()

    result = run_fig1(
        dataset=args.dataset,
        n_clients=args.clients,
        layer_indices=tuple(args.layers),
        scale=get_scale("quick"),
        seed=args.seed,
        local_steps=args.steps,
    )
    print()
    print(f"clients 0..{args.clients - 1}; even ids hold classes 0-4, "
          "odd ids hold classes 5-9")
    print(format_fig1(result))
    best = result.best_layer()
    print(f"\nmost distribution-revealing layer: {best} "
          f"({result.layer_names[best]}) — FedClust uploads exactly this "
          "(the final layer) for clustering.")


if __name__ == "__main__":
    main()
